/**
 * @file
 * Property/fuzz tests of the Procedure-1 executor: randomized programs
 * with consistent message ordering must always complete (no deadlock),
 * deterministically, with conserved compute time -- under both
 * overlapping (Hydra) and blocking (FAB) networks.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sync/executor.hh"

namespace hydra {
namespace {

class FuzzNetwork : public NetworkModel
{
  public:
    FuzzNetwork(Tick per_byte, Tick setup, bool overlaps)
        : perByte_(per_byte), setup_(setup), overlaps_(overlaps)
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<FuzzNetwork>(*this);
    }

    Tick
    transferTime(uint64_t b, size_t, size_t) const override
    {
        return 100 + perByte_ * b;
    }

    Tick
    broadcastTime(uint64_t b, size_t, size_t) const override
    {
        return 150 + perByte_ * b;
    }

    Tick setupLatency() const override { return setup_; }
    bool overlapsCompute() const override { return overlaps_; }
    Tick stepSyncLatency() const override { return 0; }

  private:
    Tick perByte_;
    Tick setup_;
    bool overlaps_;
};

/**
 * Generate a random but deadlock-free program: messages get a global
 * total order; each card's comm queue lists its sends/recvs in that
 * order, which matches the executor's head-of-queue handshake.
 */
Program
randomProgram(size_t cards, uint64_t seed, size_t n_messages,
              size_t n_computes, Tick& total_compute)
{
    Rng rng(seed);
    ProgramBuilder pb(cards);
    uint32_t label = pb.label("fuzz");
    total_compute = 0;

    // Seed compute work per card so sends have producers.
    std::vector<uint64_t> last_compute(cards, 0);
    for (size_t c = 0; c < cards; ++c) {
        Tick d = 10 + rng.uniformU64(200);
        total_compute += d;
        last_compute[c] = pb.addCompute(c, d, OpCost{}, label);
    }

    std::vector<uint64_t> msgs;
    for (size_t m = 0; m < n_messages; ++m) {
        size_t src = rng.uniformU64(cards);
        if (cards < 2)
            break;
        if (rng.uniformU64(4) == 0) {
            // Broadcast.
            msgs.push_back(pb.broadcastFrom(src, 1 + rng.uniformU64(999),
                                            last_compute[src]));
        } else {
            size_t dst = rng.uniformU64(cards);
            if (dst == src)
                dst = (dst + 1) % cards;
            msgs.push_back(pb.sendTo(src, dst, 1 + rng.uniformU64(999),
                                     last_compute[src]));
        }
        // Interleave more compute, sometimes data-dependent (CT_d).
        size_t c = rng.uniformU64(cards);
        std::vector<uint64_t> waits;
        if (!msgs.empty() && rng.uniformU64(2) == 0) {
            // Wait only on a message this card actually receives:
            // broadcast msgs reach everyone; for point-to-point we
            // conservatively skip (receipt not guaranteed for c).
            // Use the last broadcast if any.
        }
        Tick d = 5 + rng.uniformU64(100);
        total_compute += d;
        last_compute[c] = pb.addCompute(c, d, OpCost{}, label, waits);
    }
    for (size_t k = 0; k < n_computes; ++k) {
        size_t c = rng.uniformU64(cards);
        Tick d = 1 + rng.uniformU64(50);
        total_compute += d;
        last_compute[c] = pb.addCompute(c, d, OpCost{}, label);
    }
    return pb.take();
}

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool, uint64_t>>
{
};

TEST_P(FuzzTest, CompletesDeterministically)
{
    auto [cards, overlaps, seed] = GetParam();
    ClusterConfig cfg{1, cards};
    FuzzNetwork net(3, 20, overlaps);
    ClusterExecutor ex(cfg, net);

    Tick total_a = 0, total_b = 0;
    Program pa = randomProgram(cards, seed, 40, 30, total_a);
    Program pb = randomProgram(cards, seed, 40, 30, total_b);
    RunStats a = ex.run(pa);
    RunStats b = ex.run(pb);

    // Determinism.
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.netBytes, b.netBytes);

    // Work conservation.
    Tick busy = 0;
    for (Tick t : a.computeBusy)
        busy += t;
    EXPECT_EQ(busy, total_a);

    // Makespan bounds: at least the busiest card, at most the sum of
    // everything serialized.
    EXPECT_GE(a.makespan, a.maxComputeBusy());
}

INSTANTIATE_TEST_SUITE_P(
    Programs, FuzzTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 8, 16),
                       ::testing::Bool(),
                       ::testing::Values(11, 22, 33, 44)));

/**
 * Derive a random-but-deterministic fault plan from a seed: transient
 * drop/corrupt rates, occasional link degradation, a straggler, and
 * sometimes a permanent card kill.
 */
FaultPlan
randomFaultPlan(uint64_t seed, size_t cards)
{
    Rng rng(seed * 7919 + 13);
    FaultPlan plan;
    plan.seed = seed;
    const double drops[] = {0.0, 0.05, 0.3, 0.8};
    plan.dropRate = drops[rng.uniformU64(4)];
    const double corrupts[] = {0.0, 0.1, 0.5};
    plan.corruptRate = corrupts[rng.uniformU64(3)];
    if (rng.uniformU64(3) == 0)
        plan.linkDegrade = 1.0 + rng.uniformReal(0.0, 3.0);
    if (rng.uniformU64(2) == 0)
        plan.stragglers[rng.uniformU64(cards)] =
            1.0 + rng.uniformReal(0.0, 4.0);
    if (rng.uniformU64(3) == 0)
        plan.cardFailAt[rng.uniformU64(cards)] =
            rng.uniformU64(20000);
    return plan;
}

/**
 * Robustness property: random valid programs under random fault plans
 * must either complete or return a structured error — the process
 * never aborts — and every outcome is deterministic in the seed.
 */
TEST_P(FuzzTest, FaultPlansNeverAbortAndStayDeterministic)
{
    auto [cards, overlaps, seed] = GetParam();
    ClusterConfig cfg{1, cards};
    FuzzNetwork net(3, 20, overlaps);
    ClusterExecutor ex(cfg, net);
    RetryPolicy retry;
    retry.maxAttempts = 3;
    retry.backoffBase = 50;
    ex.setRetryPolicy(retry);

    for (uint64_t v = 0; v < 4; ++v) {
        uint64_t fault_seed = seed * 100 + v;
        ex.setFaultPlan(randomFaultPlan(fault_seed, cards));

        Tick total = 0;
        RunResult a = ex.tryRun(
            randomProgram(cards, seed, 30, 20, total));
        RunResult b = ex.tryRun(
            randomProgram(cards, seed, 30, 20, total));

        // Valid programs only fail through the fault machinery.
        if (!a.ok()) {
            EXPECT_TRUE(
                a.error.kind == RunError::Kind::TransferFailed ||
                a.error.kind == RunError::Kind::CardFailed)
                << RunError::kindName(a.error.kind) << ": "
                << a.error.message;
        }

        // Tick-identical re-run of the same (program, plan) pair.
        EXPECT_EQ(a.error.kind, b.error.kind);
        EXPECT_EQ(a.stats.makespan, b.stats.makespan);
        EXPECT_EQ(a.stats.retries, b.stats.retries);
        EXPECT_EQ(a.stats.droppedTransfers, b.stats.droppedTransfers);
        EXPECT_EQ(a.stats.netBytes, b.stats.netBytes);
    }
}

/**
 * Determinism guard: with an empty fault plan the fault-aware path is
 * tick-identical to the legacy run() path for the same seed.
 */
TEST_P(FuzzTest, EmptyFaultPlanIsTickIdenticalToLegacyRun)
{
    auto [cards, overlaps, seed] = GetParam();
    ClusterConfig cfg{1, cards};
    FuzzNetwork net(3, 20, overlaps);

    Tick total = 0;
    ClusterExecutor legacy(cfg, net);
    RunStats want = legacy.run(randomProgram(cards, seed, 40, 30, total));

    ClusterExecutor faulty(cfg, net);
    faulty.setFaultPlan(FaultPlan{}); // explicit empty plan
    RunResult got =
        faulty.tryRun(randomProgram(cards, seed, 40, 30, total));

    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.stats.makespan, want.makespan);
    EXPECT_EQ(got.stats.netBytes, want.netBytes);
    EXPECT_EQ(got.stats.netMessages, want.netMessages);
    EXPECT_EQ(got.stats.computeBusy, want.computeBusy);
    EXPECT_EQ(got.stats.commBusy, want.commBusy);
    EXPECT_EQ(got.stats.retries, 0u);
    EXPECT_EQ(got.stats.retryBackoffTicks, 0u);
}

TEST(FuzzEdge, EmptyProgramFinishesInstantly)
{
    ClusterConfig cfg{1, 4};
    FuzzNetwork net(1, 1, true);
    ClusterExecutor ex(cfg, net);
    Program p(4);
    RunStats st = ex.run(p);
    EXPECT_EQ(st.makespan, 0u);
}

TEST(FuzzEdge, ZeroDurationChainsResolve)
{
    ClusterConfig cfg{1, 2};
    FuzzNetwork net(0, 0, true);
    ClusterExecutor ex(cfg, net);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("z");
    uint64_t prev = 0;
    uint64_t msg = 0;
    for (int i = 0; i < 50; ++i) {
        prev = pb.addCompute(0, 0, OpCost{}, l,
                             msg ? std::vector<uint64_t>{msg}
                                 : std::vector<uint64_t>{});
        msg = pb.sendTo(0, 1, 1, prev);
        uint64_t echo = pb.addCompute(1, 0, OpCost{}, l, {msg});
        msg = pb.sendTo(1, 0, 1, echo);
    }
    pb.addCompute(0, 0, OpCost{}, l, {msg});
    RunStats st = ex.run(pb.take());
    // 100 transfers at fixed cost 100 each dominate.
    EXPECT_EQ(st.makespan, 100u * 100u);
}

TEST(FuzzEdge, LongPipelineManyCards)
{
    // Ring pipeline across 32 cards, 10 waves: each card computes then
    // forwards to its neighbour.
    size_t cards = 32;
    ClusterConfig cfg{4, 8};
    FuzzNetwork net(0, 0, true);
    ClusterExecutor ex(cfg, net);
    ProgramBuilder pb(cards);
    uint32_t l = pb.label("ring");
    uint64_t msg = 0;
    for (int wave = 0; wave < 10; ++wave) {
        for (size_t c = 0; c < cards; ++c) {
            uint64_t id = pb.addCompute(
                c, 10, OpCost{}, l,
                msg ? std::vector<uint64_t>{msg}
                    : std::vector<uint64_t>{});
            msg = pb.sendTo(c, (c + 1) % cards, 1, id);
        }
    }
    pb.addCompute(0, 10, OpCost{}, l, {msg});
    RunStats st = ex.run(pb.take());
    // 320 hops of (10 compute + 100 transfer) + final compute.
    EXPECT_EQ(st.makespan, 320u * 110u + 10u);
}

} // namespace
} // namespace hydra
