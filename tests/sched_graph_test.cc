/**
 * @file
 * Graph-compiler tests (DESIGN.md §15): the NetworkGraph IR must
 * round-trip losslessly with the flat step-list world, the declarative
 * registry specs must reproduce the hand-built models field for field,
 * malformed model specs must fail with a named SpecError (table + 4000
 * fuzz iterations, never a crash), Safe-level graph execution must be
 * tick-identical to the hand-built step lists (golden pins on two
 * machines), and the Aggressive cross-step passes (boot-plan,
 * fuse-linear, prefetch) must fire where modeled and strictly reduce
 * the BERT makespan.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/prototypes.hh"
#include "sched/execplan.hh"
#include "sched/graph/modelspec.hh"
#include "sched/graph/netcompile.hh"
#include "sched/progcache.hh"
#include "serve/sim.hh"

namespace hydra {
namespace {

void
expectStepEq(const Step& a, const Step& b, const std::string& ctx)
{
    EXPECT_EQ(a.kind, b.kind) << ctx;
    EXPECT_EQ(a.name, b.name) << ctx;
    EXPECT_EQ(a.parallelism, b.parallelism) << ctx;
    EXPECT_EQ(a.perUnit.rotations, b.perUnit.rotations) << ctx;
    EXPECT_EQ(a.perUnit.cmults, b.perUnit.cmults) << ctx;
    EXPECT_EQ(a.perUnit.pmults, b.perUnit.pmults) << ctx;
    EXPECT_EQ(a.perUnit.hadds, b.perUnit.hadds) << ctx;
    EXPECT_EQ(a.limbs, b.limbs) << ctx;
    EXPECT_EQ(a.agg, b.agg) << ctx;
    EXPECT_EQ(a.polyDegree, b.polyDegree) << ctx;
    EXPECT_EQ(a.unitScale, b.unitScale) << ctx; // bit-exact
    EXPECT_EQ(a.outputCts, b.outputCts) << ctx;
}

// ---------------------------------------------------------------------------
// The IR itself: round-trip, level annotation, structural validation.

TEST(GraphIR, RoundTripsEveryRegistryWorkload)
{
    for (const std::string& name : workloadNames()) {
        WorkloadModel wl = workloadByName(name);
        NetworkGraph g = NetworkGraph::fromModel(wl);
        SpecError err;
        EXPECT_TRUE(g.validate(err)) << name << ": " << err.describe();
        ASSERT_EQ(g.nodes.size(), wl.steps.size()) << name;
        // A lifted chain has exactly one edge per adjacent step pair.
        ASSERT_EQ(g.edges.size(), wl.steps.size() - 1) << name;
        EXPECT_GT(g.totalEdgeCts(), 0u) << name;

        WorkloadModel back = g.toModel();
        EXPECT_EQ(back.name, wl.name);
        EXPECT_EQ(back.logSlots, wl.logSlots);
        EXPECT_EQ(back.maxLimbs, wl.maxLimbs);
        ASSERT_EQ(back.steps.size(), wl.steps.size()) << name;
        for (size_t i = 0; i < wl.steps.size(); ++i)
            expectStepEq(back.steps[i], wl.steps[i],
                         name + "/" + wl.steps[i].name);
    }
}

TEST(GraphIR, AnnotateLevelsFollowsEquationOne)
{
    WorkloadModel m;
    m.name = "tiny";
    m.maxLimbs = 24;
    m.steps = {makeConvStep("c", 8), makeReluStep("r", 8),
               makeBootStep("b", 4), makeFcStep("f", 16)};
    NetworkGraph g = NetworkGraph::fromModel(m);
    ASSERT_EQ(g.nodes.size(), 4u);

    // Linear layer: one level.  ReLU degree 15: ceil(log2(16)) = 4.
    // Bootstrap: zero depth, resets the chain to maxLimbs.
    EXPECT_EQ(g.nodes[0].levelIn, 24u);
    EXPECT_EQ(g.nodes[0].depth, 1u);
    EXPECT_EQ(g.nodes[1].levelIn, 23u);
    EXPECT_EQ(g.nodes[1].depth, 4u);
    EXPECT_EQ(g.nodes[2].levelIn, 19u);
    EXPECT_EQ(g.nodes[2].depth, 0u);
    EXPECT_EQ(g.nodes[3].levelIn, 24u);
    EXPECT_EQ(g.nodes[3].depth, 1u);

    // Rotation totals scale with the effective unit count.
    const Step& c = m.steps[0];
    EXPECT_EQ(g.nodes[0].rotations,
              static_cast<uint64_t>(c.perUnit.rotations) *
                  c.effectiveUnits());
}

TEST(GraphIR, ValidateRejectsStructuralBreakage)
{
    WorkloadModel m;
    m.name = "tiny";
    m.steps = {makeConvStep("c", 8), makeFcStep("f", 16)};
    NetworkGraph good = NetworkGraph::fromModel(m);
    SpecError err;
    ASSERT_TRUE(good.validate(err)) << err.describe();

    {
        NetworkGraph g = good;
        g.edges.push_back({0, 0, 32}); // self-loop
        EXPECT_FALSE(g.validate(err));
    }
    {
        NetworkGraph g = good;
        g.edges.push_back({1, 7, 32}); // dangling dst
        EXPECT_FALSE(g.validate(err));
    }
    {
        NetworkGraph g = good;
        g.edges.push_back({1, 0, 32}); // cycle with 0 -> 1
        EXPECT_FALSE(g.validate(err));
        std::vector<uint32_t> order;
        EXPECT_FALSE(g.topoOrder(order, err));
        EXPECT_FALSE(err.message.empty());
    }
    {
        NetworkGraph g = good;
        g.nodes[0].step.limbs = g.maxLimbs + 1;
        EXPECT_FALSE(g.validate(err));
    }
    {
        NetworkGraph g = good;
        g.nodes[0].step.parallelism = 0;
        EXPECT_FALSE(g.validate(err));
    }
    {
        NetworkGraph g = good;
        g.nodes[1].id = 5; // ids must stay dense
        EXPECT_FALSE(g.validate(err));
    }
    {
        NetworkGraph g = good;
        g.name.clear();
        EXPECT_FALSE(g.validate(err));
    }
}

TEST(GraphIR, DescribeAndJsonCarryTheLayers)
{
    NetworkGraph g =
        parseModelGraph("model=tiny,conv=alpha:8,relu=beta:8");
    std::string text = g.describe();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);

    std::string json = g.toJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"nodes\""), std::string::npos);
    EXPECT_NE(json.find("\"edges\""), std::string::npos);
    EXPECT_NE(json.find("\"alpha\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Declarative frontend: registry fidelity, grammar, structured errors.

TEST(ModelSpec, RegistryReproducesHandBuiltModels)
{
    for (const char* name :
         {"resnet18", "resnet50", "bert", "opt", "resnet20"}) {
        ASSERT_TRUE(modelSpecExists(name)) << name;
        WorkloadModel ref = workloadByName(name);
        WorkloadModel got = modelGraphByName(name).toModel();
        EXPECT_EQ(got.name, ref.name);
        EXPECT_EQ(got.logSlots, ref.logSlots);
        EXPECT_EQ(got.maxLimbs, ref.maxLimbs);
        ASSERT_EQ(got.steps.size(), ref.steps.size()) << name;
        for (size_t i = 0; i < ref.steps.size(); ++i)
            expectStepEq(got.steps[i], ref.steps[i],
                         std::string(name) + "/" + ref.steps[i].name);
    }
}

TEST(ModelSpec, Mlp3IsDeclarativeOnly)
{
    EXPECT_TRUE(modelSpecExists("mlp3"));
    EXPECT_FALSE(workloadExists("mlp3"));

    // The unified resolver reaches it, so serving tenants can name it.
    WorkloadModel m;
    SpecError err;
    ASSERT_TRUE(tryResolveWorkloadModel("mlp3", m, err))
        << err.describe();
    EXPECT_EQ(m.name, "MLP-3");
    EXPECT_FALSE(m.steps.empty());

    // Hand-built names keep resolving through the legacy registry.
    WorkloadModel r18 = resolveWorkloadModel("resnet18");
    EXPECT_EQ(r18.name, workloadByName("resnet18").name);
}

TEST(ModelSpec, UnknownNamesListTheRegistry)
{
    NetworkGraph g;
    SpecError err;
    EXPECT_FALSE(tryModelGraphByName("nope", g, err));
    EXPECT_EQ(err.token, "nope");
    EXPECT_NE(err.message.find("unknown model"), std::string::npos);
    EXPECT_NE(err.message.find("mlp3"), std::string::npos);

    WorkloadModel m;
    EXPECT_FALSE(tryResolveWorkloadModel("nope", m, err));
    EXPECT_NE(err.message.find("unknown workload or model"),
              std::string::npos);
    EXPECT_NE(err.message.find("resnet50"), std::string::npos);
    EXPECT_NE(err.message.find("mlp3"), std::string::npos);
}

TEST(ModelSpec, ParseErrorsNameTheToken)
{
    struct Bad
    {
        const char* spec;
        const char* message;
        const char* token;
    };
    const Bad kBad[] = {
        {"", "model spec wants a model=NAME item", "model"},
        {"model=m", "model spec declares no layers", "m"},
        {"bogus", "model spec item is not key=value", "bogus"},
        {"model=m,model=n,conv=c:4", "duplicate model name", "n"},
        {"model=m,conv=c1", "conv wants NAME:PAR[:SCALE[:CTS]]", "c1"},
        {"model=m,conv=c1:0", "layer wants an integer count >= 1", "0"},
        {"model=m,conv=c1:4:-2", "layer scale wants a number > 0",
         "-2"},
        {"model=m,relu=r*:4", "layer wants a name of [A-Za-z0-9_.-]",
         "r*"},
        {"model=m,boot=b", "boot wants NAME:CTS", "b"},
        {"model=m,pcmm=q:4", "pcmm wants NAME:PAR:SCALE", "q:4"},
        {"model=m,wat=1",
         "unknown model spec key (want model/slots/limbs/conv/relu/"
         "pool/fc/boot/pcmm/ccmm/nonlin/norm/block/end)",
         "wat"},
        {"model=m,slots=0", "slots wants 1 <= log2(slots) <= 20", "0"},
        {"model=m,limbs=65", "limbs wants 1 <= limbs <= 64", "65"},
        {"model=m,conv=c:4,end", "end without an open block", "end"},
        {"model=m,block=b:2,conv=c:4", "block is missing its end",
         "b:2"},
        {"model=m,block=b:2,block=c:2,end", "blocks do not nest",
         "block=c:2"},
        {"model=m,block=b:0,end", "block count wants 1..1024", "0"},
        {"model=m,block=b:2,slots=15,end",
         "header key is not allowed inside a block", "slots"},
        {"model=m,conv=c:4,conv=c:8", "duplicate layer name", "c"},
    };
    for (const Bad& b : kBad) {
        NetworkGraph g;
        SpecError err;
        EXPECT_FALSE(tryParseModelGraph(b.spec, g, err)) << b.spec;
        EXPECT_EQ(err.message, b.message) << b.spec;
        EXPECT_EQ(err.token, b.token) << b.spec;
        EXPECT_NE(err.describe().find(b.token), std::string::npos);
    }
}

TEST(ModelSpec, BlockExpansionPrefixesNames)
{
    WorkloadModel m = parseModelGraph("model=m,conv=stem:8,"
                                      "block=b:2:5,conv=_c:4,relu=_r:4,"
                                      "end,fc=out:16")
                          .toModel();
    ASSERT_EQ(m.steps.size(), 6u);
    EXPECT_EQ(m.steps[0].name, "stem");
    EXPECT_EQ(m.steps[1].name, "b5_c");
    EXPECT_EQ(m.steps[2].name, "b5_r");
    EXPECT_EQ(m.steps[3].name, "b6_c");
    EXPECT_EQ(m.steps[4].name, "b6_r");
    EXPECT_EQ(m.steps[5].name, "out");
    EXPECT_EQ(m.steps[3].kind, ProcKind::ConvBN);
}

/** splitmix64: deterministic fuzz stream, no <random> heft. */
uint64_t
nextRand(uint64_t& s)
{
    s += 0x9e3779b97f4a7c15ull;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string
mutateSpec(std::string s, uint64_t& rng)
{
    if (s.empty())
        return s;
    switch (nextRand(rng) % 5) {
      case 0: // flip a byte to a random printable
        s[nextRand(rng) % s.size()] =
            static_cast<char>(' ' + nextRand(rng) % 95);
        break;
      case 1: // delete a byte
        s.erase(nextRand(rng) % s.size(), 1);
        break;
      case 2: // insert a random printable
        s.insert(nextRand(rng) % s.size(), 1,
                 static_cast<char>(' ' + nextRand(rng) % 95));
        break;
      case 3: // truncate
        s.resize(nextRand(rng) % s.size());
        break;
      default: { // duplicate a chunk
        size_t at = nextRand(rng) % s.size();
        size_t len = 1 + nextRand(rng) % 16;
        s.insert(at, s.substr(at, len));
        break;
      }
    }
    return s;
}

TEST(ModelSpec, FuzzedSpecsFailStructurallyOrParseCoherently)
{
    const char* text = modelSpecText("resnet50");
    ASSERT_NE(text, nullptr);
    const std::string base = text;
    uint64_t rng = 0x5eedc0ffee15ull;
    size_t rejected = 0;
    for (int i = 0; i < 4000; ++i) {
        std::string s = mutateSpec(base, rng);
        if (nextRand(rng) & 1)
            s = mutateSpec(std::move(s), rng);
        NetworkGraph g;
        SpecError err;
        if (!tryParseModelGraph(s, g, err)) {
            // Rejection is always named: a message and an offending
            // token, never an abort or an empty error.
            EXPECT_FALSE(err.message.empty()) << s;
            EXPECT_FALSE(err.describe().empty());
            ++rejected;
            continue;
        }
        // Accepted mutants must still be coherent graphs.
        EXPECT_FALSE(g.nodes.empty());
        SpecError verr;
        EXPECT_TRUE(g.validate(verr)) << verr.describe();
    }
    // Byte-level mutation of a rich spec must trip the parser often.
    EXPECT_GT(rejected, 500u);
}

// ---------------------------------------------------------------------------
// The network compiler: Safe tick-identity, Aggressive passes.

struct GraphGolden
{
    const char* machine;
    const char* model;
    uint64_t makespan; // == the hand-built pin in sched_compile_test
};

/** Safe-level graph runs must land on the step-list golden ticks. */
const GraphGolden kGraphGoldens[] = {
    {"hydra-m", "resnet50", 82584461339718ull},
    {"hydra-m", "bert", 53122397900053ull},
    {"hydra-m", "opt", 2214560898140687ull},
    {"fab-m", "resnet50", 258872566044188ull},
    {"fab-m", "bert", 159294942125964ull},
    {"fab-m", "opt", 6640184078890908ull},
};

TEST(NetCompile, SafeLoweringIsTickIdenticalToStepLists)
{
    for (const GraphGolden& g : kGraphGoldens) {
        InferenceRunner runner(machineByName(g.machine));
        NetworkGraph graph = modelGraphByName(g.model);
        InferenceResult viaGraph =
            runner.runGraph(graph, OptLevel::Safe);
        InferenceResult viaSteps = runner.run(workloadByName(g.model));
        ASSERT_TRUE(viaGraph.ok()) << g.machine << "/" << g.model;
        ASSERT_TRUE(viaSteps.ok());
        EXPECT_EQ(viaGraph.total.makespan, g.makespan)
            << g.machine << "/" << g.model;
        EXPECT_EQ(viaGraph.total.fingerprint(),
                  viaSteps.total.fingerprint())
            << g.machine << "/" << g.model;
        ASSERT_EQ(viaGraph.steps.size(), viaSteps.steps.size());
    }
}

TEST(NetCompile, NoneLevelMatchesSafeTicks)
{
    InferenceRunner runner(machineByName("hydra-m"));
    NetworkGraph graph = modelGraphByName("resnet50");
    EXPECT_EQ(runner.runGraph(graph, OptLevel::None).total.makespan,
              runner.runGraph(graph, OptLevel::Safe).total.makespan);
}

TEST(NetCompile, AggressiveElidesBertBootstrapsAndWins)
{
    InferenceRunner runner(machineByName("hydra-m"));
    NetworkGraph graph = modelGraphByName("bert");
    NetOptReport rep;
    InferenceResult aggressive =
        runner.runGraph(graph, OptLevel::Aggressive, &rep);
    InferenceResult safe = runner.runGraph(graph, OptLevel::Safe);
    ASSERT_TRUE(aggressive.ok());
    ASSERT_TRUE(safe.ok());

    // Eq. 1 walk: every per-layer boot1 is redundant (the chain reaches
    // boot2 with headroom), boot2 is load-bearing and must survive.
    EXPECT_GE(rep.bootsElided, 12u);
    EXPECT_GT(rep.modeledBootSavings, 0u);
    EXPECT_LT(aggressive.total.makespan, safe.total.makespan);
    EXPECT_NE(rep.describe().find("elided"), std::string::npos);

    size_t bootsLeft = 0;
    for (const StepResult& s : aggressive.steps)
        bootsLeft += s.kind == ProcKind::Bootstrap;
    EXPECT_GT(bootsLeft, 0u);
}

/** Compiler rig over one machine for unit-level inspection. */
struct NetRig
{
    PrototypeSpec spec;
    OpCostModel cost;
    std::unique_ptr<NetworkModel> net;

    explicit NetRig(const char* machine)
        : spec(machineByName(machine)),
          cost(spec.fpga, size_t{1} << 16, spec.dnum),
          net(spec.makeNetwork())
    {
    }

    CompiledNetwork
    compile(const NetworkGraph& g, OptLevel level)
    {
        return compileNetwork(spec, cost, *net, g, level);
    }
};

TEST(NetCompile, AggressiveFusesLinearChains)
{
    // fab-m's host-mediated network cannot overlap transfers with
    // compute, so prefetch stays off and fused units stay visible.
    NetRig rig("fab-m");
    CompiledNetwork cn =
        rig.compile(modelGraphByName("resnet50"), OptLevel::Aggressive);
    EXPECT_GT(cn.report.fusedSteps, 0u);
    EXPECT_EQ(cn.report.prefetchedBoundaries, 0u);
    ASSERT_EQ(cn.programs.size(), cn.units.size());

    bool anyFused = false;
    for (const NetUnit& u : cn.units)
        if (u.kind == NetUnit::Kind::Fused) {
            anyFused = true;
            EXPECT_GE(u.nodes.size(), 2u);
            EXPECT_NE(u.name.find(".."), std::string::npos);
        }
    EXPECT_TRUE(anyFused);
}

TEST(NetCompile, AggressivePrefetchesOnOverlappingNetworks)
{
    NetRig rig("hydra-m"); // switched: transfers overlap compute
    CompiledNetwork cn =
        rig.compile(modelGraphByName("resnet50"), OptLevel::Aggressive);
    EXPECT_GT(cn.report.prefetchedBoundaries, 0u);
    bool anyPrefetch = false;
    for (const NetUnit& u : cn.units) {
        anyPrefetch |= u.kind == NetUnit::Kind::Prefetch;
        EXPECT_LE(u.nodes.size(), kPrefetchWindow * 4);
    }
    EXPECT_TRUE(anyPrefetch);
}

TEST(NetCompile, BootPlanMergesAdjacentAndElidesRedundant)
{
    // Two back-to-back refreshes right after a depth-1 layer: they
    // merge into one combined refresh, which the level walk then
    // elides outright (23 levels of headroom, 1 needed).
    NetworkGraph g = parseModelGraph(
        "model=m,limbs=24,pcmm=q:64:1,boot=b1:4,boot=b2:4,fc=out:64");
    NetRig rig("hydra-m");
    CompiledNetwork cn = rig.compile(g, OptLevel::Aggressive);
    EXPECT_EQ(cn.report.bootsMerged, 1u);
    EXPECT_EQ(cn.report.bootsElided, 1u);
    for (const LayerNode& n : cn.graph.nodes)
        EXPECT_NE(n.step.kind, ProcKind::Bootstrap) << n.step.name;
}

TEST(NetCompile, BootPlanKeepsLoadBearingRefreshAndRelevels)
{
    // 5 softmax layers burn 20 of 24 levels; the merged refresh in the
    // middle is load-bearing (20 more levels follow) and must survive
    // with the combined ciphertext count.  Layers that run past the
    // tracked level get re-levelled instead of silently overdrawing.
    NetworkGraph g = parseModelGraph(
        "model=m,limbs=24,"
        "nonlin=s1:8,nonlin=s2:8,nonlin=s3:8,nonlin=s4:8,nonlin=s5:8,"
        "boot=b1:4,boot=b2:4,"
        "nonlin=t1:8,nonlin=t2:8,nonlin=t3:8,nonlin=t4:8,nonlin=t5:8,"
        "fc=out:16");
    NetRig rig("hydra-m");
    CompiledNetwork cn = rig.compile(g, OptLevel::Aggressive);
    EXPECT_EQ(cn.report.bootsMerged, 1u);
    EXPECT_EQ(cn.report.bootsElided, 0u);
    EXPECT_GE(cn.report.relevelled, 2u);

    size_t boots = 0;
    for (const LayerNode& n : cn.graph.nodes)
        if (n.step.kind == ProcKind::Bootstrap) {
            ++boots;
            EXPECT_EQ(n.step.parallelism, 8u); // 4 + 4 combined
        }
    EXPECT_EQ(boots, 1u);

    // The rewritten graph still executes end to end.
    InferenceRunner runner(machineByName("hydra-m"));
    NetOptReport rep;
    EXPECT_TRUE(runner.runGraph(g, OptLevel::Aggressive, &rep).ok());
}

TEST(NetCompile, InvalidGraphSurfacesStructuredError)
{
    WorkloadModel m;
    m.name = "tiny";
    m.steps = {makeConvStep("c", 8), makeFcStep("f", 16)};
    NetworkGraph g = NetworkGraph::fromModel(m);
    g.edges.push_back({1, 0, 32}); // cycle

    InferenceRunner runner(machineByName("hydra-m"));
    InferenceResult res = runner.runGraph(g);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::InvalidProgram);
    EXPECT_NE(res.error.message.find("runGraph:"), std::string::npos);
}

TEST(NetCompile, DeclarativeModelServesAsTenant)
{
    // Serving tenants resolve through resolveWorkloadModel, so a
    // declarative-only registry model is a legal workload class.
    ServeSim sim(machineByName("hydra-m"),
                 ServeSpec::parse(
                     "seed=3,duration=120,tenant=enc:open:mlp3:0.05"),
                 FaultPlan::parse(""));
    ServeStats st = sim.run();
    EXPECT_GT(st.completed, 0u);
    EXPECT_EQ(st.offered, st.completed + st.shed);
}

// ---------------------------------------------------------------------------
// DAG-shaped graphs and the unified ExecPlan path (DESIGN.md §16).

/** A branch-and-join diamond built through the IR API: one stem
 *  feeding two parallel branches that merge in a single head. */
NetworkGraph
diamondGraph()
{
    WorkloadModel m;
    m.name = "diamond";
    m.maxLimbs = 24;
    m.steps = {makeConvStep("stem", 8), makeConvStep("left", 8),
               makeReluStep("right", 8), makeFcStep("join", 16)};
    NetworkGraph g = NetworkGraph::fromModel(m);
    g.edges.clear();
    auto link = [&](uint32_t src, uint32_t dst) {
        g.edges.push_back(
            GraphEdge{src, dst, g.nodes[src].step.outputCts});
    };
    link(0, 1); // stem -> left
    link(0, 2); // stem -> right
    link(1, 3); // left -> join
    link(2, 3); // right -> join
    g.annotateLevels();
    return g;
}

TEST(GraphIR, BranchAndJoinValidatesAndOrdersDeterministically)
{
    NetworkGraph g = diamondGraph();
    SpecError err;
    ASSERT_TRUE(g.validate(err)) << err.describe();

    // Kahn with a smallest-id-first scan: the order is a function of
    // the graph alone, identical on every call.
    std::vector<uint32_t> order, again;
    ASSERT_TRUE(g.topoOrder(order, err));
    ASSERT_TRUE(g.topoOrder(again, err));
    EXPECT_EQ(order, again);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[3], 3u);

    // The join's entry level is the minimum across its predecessors:
    // the conv branch leaves 22, the degree-15 ReLU branch 19.
    EXPECT_EQ(g.nodes[1].levelIn, 23u);
    EXPECT_EQ(g.nodes[2].levelIn, 23u);
    EXPECT_EQ(g.nodes[3].levelIn, 19u);

    // Lowering follows the topological order losslessly.
    WorkloadModel back = g.toModel();
    ASSERT_EQ(back.steps.size(), 4u);
    EXPECT_EQ(back.steps[0].name, "stem");
    EXPECT_EQ(back.steps[3].name, "join");
}

TEST(ExecPlanPath, DagSafePlansAreTickIdenticalAcrossReruns)
{
    NetworkGraph g = diamondGraph();
    NetRig rig("hydra-m");
    ExecPlan a = compilePlan(rig.spec, rig.cost, *rig.net, g);
    ExecPlan b = compilePlan(rig.spec, rig.cost, *rig.net, g);
    ASSERT_EQ(a.size(), 4u); // Safe: one Single unit per layer
    ASSERT_EQ(b.size(), a.size());
    EXPECT_EQ(a.key, b.key);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.units[i].kind, NetUnit::Kind::Single);
        EXPECT_EQ(a.units[i].key, b.units[i].key);
        ASSERT_NE(a.units[i].compiled, nullptr);
    }

    InferenceRunner runner(machineByName("hydra-m"));
    InferenceResult ra = runner.runPlan(a);
    InferenceResult rb = runner.runPlan(b);
    ASSERT_TRUE(ra.ok()) << ra.error.message;
    EXPECT_EQ(ra.total.makespan, rb.total.makespan);
    EXPECT_EQ(ra.total.fingerprint(), rb.total.fingerprint());
    EXPECT_EQ(ra.stepEnds, rb.stepEnds);

    // The runGraph driver lands on the same ticks through the same
    // plan — DAG inputs flow through the one unified path.
    EXPECT_EQ(runner.runGraph(g).total.makespan, ra.total.makespan);
}

TEST(ExecPlanPath, SafePlanRunsBitIdenticalToLegacyRun)
{
    InferenceRunner runner(machineByName("hydra-m"));
    WorkloadModel wl = workloadByName("resnet18");
    std::shared_ptr<const ExecPlan> plan = runner.planFor(wl);
    ASSERT_EQ(plan->size(), wl.steps.size());
    EXPECT_EQ(plan->level, OptLevel::Safe);

    // Safe units carry the legacy per-step cache keys, so the plan
    // populates the exact ProgramCache entries the old path did.
    NetRig rig("hydra-m");
    for (size_t i = 0; i < wl.steps.size(); ++i)
        EXPECT_EQ(plan->units[i].key,
                  stepCacheKey(rig.spec, rig.spec.cluster,
                               rig.spec.cluster, rig.cost.n(),
                               wl.logSlots, wl.steps[i]))
            << i;

    InferenceResult viaPlan = runner.runPlan(*plan);
    InferenceResult legacy = runner.run(wl);
    ASSERT_TRUE(viaPlan.ok());
    EXPECT_EQ(viaPlan.total.makespan, legacy.total.makespan);
    EXPECT_EQ(viaPlan.total.fingerprint(), legacy.total.fingerprint());
    EXPECT_EQ(viaPlan.stepEnds, legacy.stepEnds);
}

TEST(ExecPlanPath, AggressivePlanMatchesRunGraphAndFusesUnits)
{
    InferenceRunner runner(machineByName("hydra-m"));
    WorkloadModel wl = workloadByName("bert");
    std::shared_ptr<const ExecPlan> plan =
        runner.planFor(wl, OptLevel::Aggressive);

    // The cross-step passes compress the unit sequence: fewer units
    // than layers, at least one unit spanning several member steps.
    EXPECT_LT(plan->size(), wl.steps.size());
    size_t multi = 0;
    for (const ExecUnit& u : plan->units)
        multi += u.steps.size() > 1;
    EXPECT_GT(multi, 0u);
    EXPECT_EQ(runner.planUnitCount(wl, OptLevel::Aggressive),
              plan->size());

    InferenceResult viaPlan = runner.runPlan(*plan);
    InferenceResult viaGraph =
        runner.runGraph(NetworkGraph::fromModel(wl),
                        OptLevel::Aggressive);
    ASSERT_TRUE(viaPlan.ok());
    EXPECT_EQ(viaPlan.total.makespan, viaGraph.total.makespan);
    EXPECT_EQ(viaPlan.stepEnds.size(), plan->size());
}

TEST(ExecPlanPath, SkeletonJobPlanMatchesLegacyRunJob)
{
    PrototypeSpec spec = machineByName("hydra-m");
    InferenceRunner runner(spec);
    WorkloadModel wl = workloadByName("resnet18");
    CardGroup group =
        CardGroup::contiguous(0, spec.cluster.cardsPerServer);
    std::shared_ptr<const ExecPlan> plan = runner.planForJob(wl, group);
    for (const ExecUnit& u : plan->units)
        EXPECT_EQ(u.compiled, nullptr); // skeleton: keys only

    const Tick start = secondsToTicks(3.0);
    InferenceResult viaPlan = runner.runJob(*plan, group, start);
    InferenceResult legacy = runner.runJob(wl, group, start);
    ASSERT_TRUE(viaPlan.ok()) << viaPlan.error.message;
    EXPECT_EQ(viaPlan.total.makespan, legacy.total.makespan);
    EXPECT_EQ(viaPlan.stepEnds, legacy.stepEnds);

    // Resumable windows index plan units; a mid-plan window matches
    // the legacy first_step/num_steps slicing.
    InferenceResult planWin = runner.runJob(*plan, group, start, {}, {},
                                            2, 3);
    InferenceResult legacyWin = runner.runJob(wl, group, start, {}, {},
                                              2, 3);
    EXPECT_EQ(planWin.total.makespan, legacyWin.total.makespan);
    EXPECT_EQ(planWin.stepEnds, legacyWin.stepEnds);
    ASSERT_EQ(planWin.steps.size(), 3u);
}

// ---------------------------------------------------------------------------
// Bounded ProgramCache: LRU order, eviction counter.

TEST(ProgCache, BoundedCapacityEvictsLeastRecentlyUsed)
{
    NetRig rig("hydra-m");
    WorkloadModel wl = workloadByName("resnet18");
    ASSERT_GE(wl.steps.size(), 3u);

    ProgramCache cache; // local: the global cache stays untouched
    cache.setCapacity(2);
    auto get = [&](size_t i) {
        std::string key = stepCacheKey(rig.spec, rig.spec.cluster,
                                       rig.spec.cluster, rig.cost.n(),
                                       wl.logSlots, wl.steps[i]);
        return cache.getOrCompile(key, [&] {
            return compileStep(rig.cost, *rig.net,
                               rig.spec.cluster.totalCards(),
                               wl.logSlots, rig.spec.mapping,
                               wl.steps[i]);
        });
    };

    get(0);
    get(1);
    get(2); // evicts step 0 (capacity 2)
    ProgramCache::Stats st = cache.stats();
    EXPECT_EQ(st.misses, 3u);
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.entries, 2u);

    get(0); // miss again: it was the LRU victim; evicts step 1
    get(2); // hit: still resident
    st = cache.stats();
    EXPECT_EQ(st.misses, 4u);
    EXPECT_EQ(st.evictions, 2u);
    EXPECT_EQ(st.hits, 1u);

    cache.setCapacity(0); // unbounded again
    get(1);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.stats().entries, 3u);
}

} // namespace
} // namespace hydra
