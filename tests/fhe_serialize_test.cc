/**
 * @file
 * Wire-format tests: ciphertext/plaintext/key round trips, size
 * accounting, and rejection of corrupted or mismatched blobs.
 */

#include <gtest/gtest.h>

#include "fhe/serialize.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;
using test::randomComplexVec;

CkksParams
serParams()
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    return p;
}

TEST(Serialize, CiphertextRoundTripDecrypts)
{
    FheHarness h(serParams(), {1});
    auto v = randomComplexVec(h.ctx.slots(), 101);
    Ciphertext ct = h.encryptVec(v);

    Bytes blob = serialize(ct);
    EXPECT_EQ(blob.size(), serializedCiphertextBytes(ct));
    Ciphertext back = deserializeCiphertext(blob, h.ctx.basis());
    EXPECT_EQ(back.level(), ct.level());
    EXPECT_DOUBLE_EQ(back.scale, ct.scale);
    EXPECT_LT(maxError(v, h.decryptVec(back)), 1e-4);
}

TEST(Serialize, DeserializedCiphertextComputes)
{
    FheHarness h(serParams(), {1});
    auto v = randomComplexVec(h.ctx.slots(), 102, 0.9);
    Ciphertext ct =
        deserializeCiphertext(serialize(h.encryptVec(v)), h.ctx.basis());
    auto sq = h.decryptVec(h.eval.rescale(h.eval.mulRelin(ct, ct)));
    for (size_t j = 0; j < v.size(); ++j)
        EXPECT_NEAR(std::abs(sq[j] - v[j] * v[j]), 0.0, 1e-3);
}

TEST(Serialize, LowLevelCiphertextKeepsShape)
{
    FheHarness h(serParams(), {});
    auto v = randomComplexVec(h.ctx.slots(), 103);
    Ciphertext ct = h.eval.dropToLevel(h.encryptVec(v), 2);
    Ciphertext back = deserializeCiphertext(serialize(ct), h.ctx.basis());
    EXPECT_EQ(back.level(), 2u);
    EXPECT_LT(maxError(v, h.decryptVec(back)), 1e-4);
}

TEST(Serialize, PlaintextRoundTrip)
{
    FheHarness h(serParams(), {});
    auto v = randomComplexVec(h.ctx.slots(), 104);
    Plaintext pt = h.encoder.encode(v, h.ctx.params().scale(), 3);
    Plaintext back = deserializePlaintext(serialize(pt), h.ctx.basis());
    EXPECT_LT(maxError(v, h.encoder.decode(back)), 1e-5);
}

TEST(Serialize, EvalKeyRoundTripRelinearizes)
{
    FheHarness h(serParams(), {});
    EvalKey relin2 =
        deserializeEvalKey(serialize(h.relin), h.ctx.basis());
    Evaluator eval2(h.ctx, h.encoder);
    eval2.setRelinKey(&relin2);

    auto v = randomComplexVec(h.ctx.slots(), 105, 0.9);
    auto ct = h.encryptVec(v);
    auto prod = h.decryptVec(eval2.rescale(eval2.mulRelin(ct, ct)));
    for (size_t j = 0; j < v.size(); ++j)
        EXPECT_NEAR(std::abs(prod[j] - v[j] * v[j]), 0.0, 1e-3);
}

TEST(Serialize, PolyRoundTripExact)
{
    FheHarness h(serParams(), {});
    Rng rng(106);
    std::vector<i64> c(h.ctx.n());
    for (auto& x : c)
        x = static_cast<i64>(rng.uniformU64(1000)) - 500;
    RnsPoly p = RnsPoly::fromSigned(h.ctx.basis(), 4, true, c);
    p.toNtt();
    RnsPoly back = deserializePoly(serialize(p), h.ctx.basis());
    EXPECT_TRUE(back.nttForm());
    EXPECT_TRUE(back.hasSpecial());
    for (size_t k = 0; k < p.limbCount(); ++k)
        EXPECT_EQ(p.limb(k), back.limb(k));
}

TEST(Serialize, RejectsWrongTypeTag)
{
    FheHarness h(serParams(), {});
    auto v = randomComplexVec(h.ctx.slots(), 107);
    Bytes blob = serialize(h.encryptVec(v));
    EXPECT_EXIT(deserializePlaintext(blob, h.ctx.basis()),
                ::testing::ExitedWithCode(1), "type tag");
}

TEST(Serialize, RejectsTruncatedBlob)
{
    FheHarness h(serParams(), {});
    auto v = randomComplexVec(h.ctx.slots(), 108);
    Bytes blob = serialize(h.encryptVec(v));
    blob.resize(blob.size() / 2);
    EXPECT_EXIT(deserializeCiphertext(blob, h.ctx.basis()),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(Serialize, RejectsForeignParameters)
{
    FheHarness h(serParams(), {});
    auto v = randomComplexVec(h.ctx.slots(), 109);
    Bytes blob = serialize(h.encryptVec(v));

    CkksParams other = serParams();
    other.levels = 4; // different chain -> different fingerprint
    CkksContext other_ctx(other);
    EXPECT_EXIT(deserializeCiphertext(blob, other_ctx.basis()),
                ::testing::ExitedWithCode(1), "parameters");
}

TEST(Serialize, RejectsCorruptedResidues)
{
    FheHarness h(serParams(), {});
    auto v = randomComplexVec(h.ctx.slots(), 110);
    Bytes blob = serialize(h.encryptVec(v));
    // Smash a residue word past the header into an impossible value.
    std::fill(blob.end() - 8, blob.end(), 0xff);
    EXPECT_EXIT(deserializeCiphertext(blob, h.ctx.basis()),
                ::testing::ExitedWithCode(1), "out-of-range");
}

TEST(Serialize, FingerprintDistinguishesBases)
{
    CkksContext a(serParams());
    CkksParams p2 = serParams();
    p2.levels = 4;
    CkksContext b(p2);
    EXPECT_NE(basisFingerprint(*a.basis()), basisFingerprint(*b.basis()));
    EXPECT_EQ(basisFingerprint(*a.basis()), basisFingerprint(*a.basis()));
}

} // namespace
} // namespace hydra
