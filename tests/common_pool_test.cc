/**
 * @file
 * BufferPool unit tests: exact-size bucket reuse, counter bookkeeping,
 * trim, and concurrent acquire/release from ThreadPool workers.  All
 * assertions are written against counter *deltas* because the pool is
 * process-global and other code (RnsPoly, static fixtures) may hold
 * buffers when a test starts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.hh"
#include "common/pool.hh"

namespace hydra {
namespace {

using Stats = BufferPool::Stats;

Stats
delta(const Stats& before)
{
    Stats now = BufferPool::global().stats();
    Stats d;
    d.hits = now.hits - before.hits;
    d.misses = now.misses - before.misses;
    d.released = now.released - before.released;
    d.outstanding = now.outstanding - before.outstanding;
    d.cached = now.cached - before.cached;
    d.cachedWords = now.cachedWords - before.cachedWords;
    return d;
}

TEST(BufferPool, AcquireMissThenReuseHit)
{
    auto& pool = BufferPool::global();
    pool.trim(); // start from empty buckets for this size
    Stats base = pool.stats();

    std::uint64_t* first_ptr = nullptr;
    {
        PoolBuffer b = pool.acquire(1024);
        ASSERT_TRUE(b.valid());
        EXPECT_EQ(b.words(), 1024u);
        first_ptr = b.data();
        // The memory is writable across the whole span.
        for (size_t i = 0; i < 1024; ++i)
            b.data()[i] = i;
        Stats d = delta(base);
        EXPECT_EQ(d.misses, 1u);
        EXPECT_EQ(d.hits, 0u);
        EXPECT_EQ(d.outstanding, 1u);
    }
    // Released back into the 1024-word bucket...
    Stats d = delta(base);
    EXPECT_EQ(d.released, 1u);
    EXPECT_EQ(d.outstanding, 0u);
    EXPECT_EQ(d.cached, 1u);
    EXPECT_EQ(d.cachedWords, 1024u);

    // ...so the next same-size acquire is a hit on the same memory.
    PoolBuffer again = pool.acquire(1024);
    EXPECT_EQ(again.data(), first_ptr);
    EXPECT_EQ(delta(base).hits, 1u);

    // A different size cannot reuse the bucket.
    PoolBuffer other = pool.acquire(2048);
    EXPECT_NE(other.data(), first_ptr);
    EXPECT_EQ(delta(base).misses, 2u);
}

TEST(BufferPool, AlignmentIs64Bytes)
{
    for (size_t words : {1u, 7u, 64u, 1000u}) {
        PoolBuffer b = BufferPool::global().acquire(words);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u)
            << words << " words";
    }
}

TEST(BufferPool, ResetReturnsEarlyAndMoveTransfersOwnership)
{
    auto& pool = BufferPool::global();
    Stats base = pool.stats();

    PoolBuffer a = pool.acquire(512);
    PoolBuffer b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(delta(base).outstanding, 1u);

    b.reset();
    EXPECT_FALSE(b.valid());
    Stats d = delta(base);
    EXPECT_EQ(d.outstanding, 0u);
    EXPECT_EQ(d.released, 1u);

    // Double reset and destruction of empty handles are no-ops.
    b.reset();
    EXPECT_EQ(delta(base).released, 1u);
}

TEST(BufferPool, TrimFreesIdleBuffers)
{
    auto& pool = BufferPool::global();
    { PoolBuffer b = pool.acquire(333); }
    { PoolBuffer b = pool.acquire(444); }
    Stats before = pool.stats();
    EXPECT_GE(before.cached, 2u);

    pool.trim();
    Stats after = pool.stats();
    EXPECT_EQ(after.cached, 0u);
    EXPECT_EQ(after.cachedWords, 0u);
    // Outstanding buffers are never touched by trim.
    EXPECT_EQ(after.outstanding, before.outstanding);
}

TEST(BufferPool, CountersBalanceUnderConcurrentChurn)
{
    auto& pool = BufferPool::global();
    size_t saved = ThreadPool::instance().threadCount();
    ThreadPool::instance().setThreadCount(8);
    Stats base = pool.stats();

    constexpr size_t kIters = 2000;
    std::vector<int> ok(kIters, 0);
    parallelFor(0, kIters, [&](size_t i) {
        // Mix of four bucket sizes, checked for torn contents.
        size_t words = 128 << (i % 4);
        PoolBuffer b = pool.acquire(words);
        std::uint64_t tag = 0x9e3779b97f4a7c15ull * (i + 1);
        for (size_t j = 0; j < words; ++j)
            b.data()[j] = tag + j;
        bool good = b.words() == words;
        for (size_t j = 0; j < words; ++j)
            good &= b.data()[j] == tag + j;
        ok[i] = good ? 1 : 0;
    });
    ThreadPool::instance().setThreadCount(saved);

    for (size_t i = 0; i < kIters; ++i)
        ASSERT_EQ(ok[i], 1) << "buffer contents torn at iteration " << i;

    Stats d = delta(base);
    EXPECT_EQ(d.hits + d.misses, kIters);
    EXPECT_EQ(d.released, kIters);
    EXPECT_EQ(d.outstanding, 0u);
    // With only four distinct sizes the buckets must serve the bulk.
    EXPECT_GT(d.hits, d.misses);
}

TEST(BufferPool, ResetStatsClearsCumulativeCountersOnly)
{
    auto& pool = BufferPool::global();
    PoolBuffer held = pool.acquire(256);
    { PoolBuffer b = pool.acquire(256); } // park one in the bucket

    pool.resetStats();
    Stats s = pool.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.released, 0u);
    // Live-state gauges survive a counter reset.
    EXPECT_GE(s.outstanding, 1u);
    EXPECT_GE(s.cached, 1u);
}

} // namespace
} // namespace hydra
