/**
 * @file
 * Homomorphic polynomial evaluation tests against plain Horner.
 */

#include <gtest/gtest.h>

#include "fhe/polyeval.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;
using test::randomRealVec;

cplx
hornerRef(const std::vector<cplx>& coeffs, cplx x)
{
    cplx acc(0, 0);
    for (size_t k = coeffs.size(); k-- > 0;)
        acc = acc * x + coeffs[k];
    return acc;
}

class PolyEvalTest : public ::testing::TestWithParam<size_t>
{
  protected:
    PolyEvalTest()
        : h_(params(), {})
    {
    }

    static CkksParams
    params()
    {
        CkksParams p = CkksParams::unitTest();
        p.n = 1 << 8;
        p.levels = 9; // degree 31 ladder (5) + alignment (1) + slack
        return p;
    }

    FheHarness h_;
};

TEST_P(PolyEvalTest, MatchesPlainHorner)
{
    size_t deg = GetParam();
    Rng rng(40 + deg);
    std::vector<cplx> coeffs(deg + 1);
    for (auto& c : coeffs)
        c = cplx(rng.uniformReal(-1, 1), rng.uniformReal(-1, 1));

    auto v = randomRealVec(h_.ctx.slots(), 41, 0.9);
    auto ct = h_.encryptVec(v);
    auto got = h_.decryptVec(evalPolynomial(h_.eval, ct, coeffs));
    for (size_t j = 0; j < v.size(); ++j)
        EXPECT_NEAR(std::abs(got[j] - hornerRef(coeffs, v[j])), 0.0, 5e-2)
            << "degree " << deg << " slot " << j;
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyEvalTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 31));

TEST(PolyEvalSpecial, SparsePolynomial)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    p.levels = 7;
    FheHarness h(p, {});
    // x^8 - 0.5 (only two nonzero coefficients)
    std::vector<cplx> coeffs(9, cplx(0, 0));
    coeffs[8] = cplx(1, 0);
    coeffs[0] = cplx(-0.5, 0);

    auto v = randomRealVec(h.ctx.slots(), 42, 0.9);
    auto got = h.decryptVec(evalPolynomial(h.eval, h.encryptVec(v), coeffs));
    for (size_t j = 0; j < v.size(); ++j) {
        double x = v[j].real();
        double expect = std::pow(x, 8) - 0.5;
        EXPECT_NEAR(std::abs(got[j] - expect), 0.0, 1e-2);
    }
}

TEST(PolyEvalSpecial, ReluLikeApproximation)
{
    // Degree-7 polynomial approximation of a smooth sign-ish function,
    // the workhorse of the paper's Non-linear layers.
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    p.levels = 7;
    FheHarness h(p, {});
    // Odd polynomial 1.5x - 0.5x^3-ish (soft sign on [-1, 1]).
    std::vector<cplx> coeffs = {
        {0, 0}, {1.875, 0}, {0, 0}, {-1.25, 0},
        {0, 0}, {0.375, 0},
    };
    auto v = randomRealVec(h.ctx.slots(), 43, 1.0);
    auto got = h.decryptVec(evalPolynomial(h.eval, h.encryptVec(v), coeffs));
    for (size_t j = 0; j < v.size(); ++j) {
        double x = v[j].real();
        double expect = 1.875 * x - 1.25 * x * x * x +
                        0.375 * std::pow(x, 5);
        EXPECT_NEAR(std::abs(got[j] - expect), 0.0, 1e-2);
    }
}

TEST(PolyEvalSpecial, DepthAccounting)
{
    EXPECT_EQ(polyEvalDepth(1), 1u);
    EXPECT_EQ(polyEvalDepth(2), 3u);
    EXPECT_EQ(polyEvalDepth(7), 4u);
    EXPECT_EQ(polyEvalDepth(31), 6u);

    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    p.levels = 9;
    FheHarness h(p, {});
    std::vector<cplx> coeffs(8, cplx(0.1, 0));
    auto ct = h.encryptVec(randomRealVec(h.ctx.slots(), 44, 0.5));
    auto out = evalPolynomial(h.eval, ct, coeffs);
    EXPECT_GE(ct.level() - out.level(), 1u);
    EXPECT_LE(ct.level() - out.level(), polyEvalDepth(7));
}

} // namespace
} // namespace hydra
