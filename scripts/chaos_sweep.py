#!/usr/bin/env python3
"""Chaos sweep for the federated serving simulator.

Runs `serve_cluster` over a seed sweep of randomly generated (but
seed-deterministic) cluster-fault plans and asserts, for every seed:

  1. the binary exits 0 and prints exactly one valid JSON object
     (--json machinery survives arbitrary chaos plans);
  2. the accounting identity holds exactly:
         offered  == completed + shed.total
         admitted == completed + federation.shed_after_admit
         shed.total == shed.queue_full + shed.no_capacity
  3. a rerun of the same seed is bit-identical (same stats hash);
  4. the hash is invariant under HYDRA_THREADS=1 vs HYDRA_THREADS=4
     (virtual-time results never depend on host parallelism).

Usage: chaos_sweep.py PATH/TO/serve_cluster [--seeds N] [--machine M]

The fault plans are derived from the seed with a splitmix64 generator,
so the sweep itself is reproducible: every CI run tests the same plans
until --seeds changes.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from gen_workload import make_spec  # noqa: E402

MASK = (1 << 64) - 1


def splitmix64(state):
    """One splitmix64 step: returns (new_state, 64-bit draw)."""
    state = (state + 0x9E3779B97F4A7C15) & MASK
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK
    return state, z ^ (z >> 31)


def make_plan(seed, clusters, duration):
    """Derive a deterministic chaos plan for this seed.

    Mixes cluster kills, partitions, and card kills; always leaves at
    least one cluster untouched so the run can make progress.
    """
    state = seed * 0x9E3779B97F4A7C15 & MASK or 1
    parts = []
    victims = list(range(1, clusters))  # cluster 0 always survives
    state, draw = splitmix64(state)
    n_faults = 1 + draw % min(2, len(victims))
    for i in range(n_faults):
        cluster = victims[i % len(victims)]
        state, draw = splitmix64(state)
        at = 5 + draw % (duration // 2)
        state, draw = splitmix64(state)
        if draw % 3 == 0:
            state, draw = splitmix64(state)
            heal = 2 + draw % 10
            parts.append("cpart=%d@%d:%d" % (cluster, at, heal))
        else:
            parts.append("ckill=%d@%d" % (cluster, at))
    state, draw = splitmix64(state)
    if draw % 2 == 0:  # sometimes also kill a single card on cluster 0
        state, draw = splitmix64(state)
        parts.append("kill=%d@%d" % (draw % 8, 3 + draw % duration))
    return ",".join(parts)


def run_once(binary, machine, serve, plan, threads):
    cmd = [binary, "--machine", machine, "--serve", serve,
           "--cluster-faults", plan, "--json"]
    env = dict(os.environ, HYDRA_THREADS=str(threads))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit("CRASH (exit %d) for plan '%s':\n%s"
                         % (proc.returncode, plan, proc.stderr))
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        raise SystemExit("bad JSON for plan '%s': %s\n%s"
                         % (plan, e, proc.stdout))


def check_accounting(st, plan):
    offered = st["offered"]
    admitted = st["admitted"]
    completed = st["completed"]
    shed = st["shed"]
    fed = st["federation"]
    if offered != completed + shed["total"]:
        raise SystemExit(
            "accounting broken for '%s': offered %d != completed %d "
            "+ shed %d" % (plan, offered, completed, shed["total"]))
    if admitted != completed + fed["shed_after_admit"]:
        raise SystemExit(
            "accounting broken for '%s': admitted %d != completed %d "
            "+ shed_after_admit %d"
            % (plan, admitted, completed, fed["shed_after_admit"]))
    if shed["total"] != shed["queue_full"] + shed["no_capacity"]:
        raise SystemExit(
            "shed split broken for '%s': %d != %d + %d"
            % (plan, shed["total"], shed["queue_full"],
               shed["no_capacity"]))
    per_cluster = sum(c["completed"] for c in fed["clusters"])
    if per_cluster != completed:
        raise SystemExit(
            "per-cluster completion sum broken for '%s': %d != %d"
            % (plan, per_cluster, completed))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", help="path to the serve_cluster binary")
    ap.add_argument("--seeds", type=int, default=6)
    ap.add_argument("--machine", default="hydra-m")
    ap.add_argument("--clusters", type=int, default=4)
    ap.add_argument("--duration", type=int, default=30)
    ap.add_argument("--sched", default="fifo",
                    help="scheduling policy to chaos-test "
                         "(fifo, cake, cake:W:K)")
    ap.add_argument("--bulk", type=int, default=0,
                    help="when > 0, sweep the gen_workload bulk shape "
                         "with this many tenants per block instead of "
                         "the single-pool spec")
    args = ap.parse_args()

    for seed in range(1, args.seeds + 1):
        plan = make_plan(seed, args.clusters, args.duration)
        if args.bulk > 0:
            serve = make_spec(seed=seed, clusters=args.clusters,
                              duration=args.duration,
                              per_block=args.bulk)
        else:
            serve = ("seed=%d,duration=%d,clusters=%d,"
                     "group=resnet18:8,"
                     "tenant=pool:closed:resnet18:6:0"
                     % (seed, args.duration, args.clusters))
        # Prepending sched=fifo would be a no-op; keep the legacy spec
        # byte-identical in that case.
        if args.sched != "fifo":
            serve = "sched=%s,%s" % (args.sched, serve)
        first = run_once(args.binary, args.machine, serve, plan, 4)
        check_accounting(first, plan)
        rerun = run_once(args.binary, args.machine, serve, plan, 4)
        if first["hash"] != rerun["hash"]:
            raise SystemExit("rerun hash diverged for '%s': %s vs %s"
                             % (plan, first["hash"], rerun["hash"]))
        serial = run_once(args.binary, args.machine, serve, plan, 1)
        if first["hash"] != serial["hash"]:
            raise SystemExit(
                "HYDRA_THREADS=1 vs 4 hash diverged for '%s': %s vs %s"
                % (plan, first["hash"], serial["hash"]))
        fed = first["federation"]
        print("seed %d ok: plan[%s] completed=%d shed=%d failovers=%d "
              "recovered=%d stalled=%s hash=%s"
              % (seed, plan, first["completed"], first["shed"]["total"],
                 fed["failovers"], fed["recovered_steps"],
                 fed["stalled"], first["hash"]))
    print("chaos sweep: %d seed(s) clean" % args.seeds)


if __name__ == "__main__":
    main()
