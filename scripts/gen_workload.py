#!/usr/bin/env python3
"""Generate bulk ServeSpec strings for the serving simulator.

The serving layer's `tenants=COUNT:PREFIX:...` bulk syntax makes
10k-tenant specs cheap to express, but the interesting part of a large
workload is the *shape*: closed-loop tenant blocks with staggered
think times (so arrival phases decorrelate instead of herding), a
small pool of long-job tenants to create head-of-line blocking, and a
group layout that leaves the long-job class under-provisioned.  This
script derives all of that from a handful of scale knobs and prints a
single spec string for `serve_cluster --serve` (or `--serve-file`).

Why staggered think times: a closed-loop block with think=0 and more
clients than queue capacity respawns its entire population on the same
tick forever; with one shared think value all blocks re-arrive in
lockstep and the queue oscillates between empty and full.  Spreading
blocks over [think_base, think_base + think_step * blocks) keeps the
offered load constant without synchronized herds.

The default shape (25 blocks x 400 short-job tenants + 8 long-job
tenants on a 4-cluster hydra-m federation) is the SLO acceptance
workload: at duration=5000 it offers ~45k requests, at duration=140000
it offers >=1M under either scheduler.  Scale with --per-block /
--duration; everything else is seed-deterministic in the simulator, so two invocations with the
same arguments always produce bit-identical runs.

Usage:
  gen_workload.py --duration 5000 > spec.txt
  serve_cluster --machine hydra-m --serve-file spec.txt --json
"""

import argparse


def make_spec(seed=11, clusters=4, duration=5000, queue=2048,
              requests=3000000, blocks=25, per_block=400,
              short_model="resnet20", short_cards=1,
              think_base=940, think_step=17,
              long_tenants=8, long_model="resnet18", long_cards=1,
              long_think=40,
              groups="resnet20:2,resnet20:2,resnet18:4",
              sched=None):
    """Build a bulk ServeSpec string; `sched=None` keeps the spec
    scheduler-neutral so callers can prepend `sched=...` for A/B runs
    over an otherwise identical workload."""
    parts = []
    if sched:
        parts.append("sched=%s" % sched)
    parts.append("seed=%d" % seed)
    parts.append("clusters=%d" % clusters)
    parts.append("duration=%d" % duration)
    parts.append("queue=%d" % queue)
    parts.append("requests=%d" % requests)
    for i in range(blocks):
        parts.append("tenants=%d:sp%d:closed:%s:%d:%d"
                     % (per_block, i, short_model, short_cards,
                        think_base + think_step * i))
    if long_tenants:
        parts.append("tenants=%d:lp:closed:%s:%d:%d"
                     % (long_tenants, long_model, long_cards,
                        long_think))
    for g in groups.split(","):
        parts.append("group=%s" % g)
    return ",".join(parts)


def main():
    ap = argparse.ArgumentParser(
        description="emit a bulk ServeSpec on stdout")
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--clusters", type=int, default=4)
    ap.add_argument("--duration", type=int, default=5000,
                    help="virtual seconds (140000 => >=1M offered)")
    ap.add_argument("--queue", type=int, default=2048)
    ap.add_argument("--requests", type=int, default=3000000,
                    help="hard cap on admitted requests")
    ap.add_argument("--blocks", type=int, default=25,
                    help="short-job tenant blocks (staggered thinks)")
    ap.add_argument("--per-block", type=int, default=400,
                    help="tenants per short-job block")
    ap.add_argument("--short-model", default="resnet20")
    ap.add_argument("--short-cards", type=int, default=1)
    ap.add_argument("--think-base", type=int, default=940)
    ap.add_argument("--think-step", type=int, default=17)
    ap.add_argument("--long-tenants", type=int, default=8)
    ap.add_argument("--long-model", default="resnet18")
    ap.add_argument("--long-cards", type=int, default=1)
    ap.add_argument("--long-think", type=int, default=40)
    ap.add_argument("--groups",
                    default="resnet20:2,resnet20:2,resnet18:4",
                    help="per-cluster group layout")
    ap.add_argument("--sched", default=None,
                    help="prepend sched=VALUE (fifo, cake, cake:W:K)")
    args = ap.parse_args()
    print(make_spec(seed=args.seed, clusters=args.clusters,
                    duration=args.duration, queue=args.queue,
                    requests=args.requests, blocks=args.blocks,
                    per_block=args.per_block,
                    short_model=args.short_model,
                    short_cards=args.short_cards,
                    think_base=args.think_base,
                    think_step=args.think_step,
                    long_tenants=args.long_tenants,
                    long_model=args.long_model,
                    long_cards=args.long_cards,
                    long_think=args.long_think,
                    groups=args.groups, sched=args.sched))


if __name__ == "__main__":
    main()
