#!/usr/bin/env python3
"""SLO regression smoke for the CAKE serving scheduler.

Runs the gen_workload acceptance shape twice over the same seed --
once under `sched=fifo`, once under `sched=cake` -- and asserts the
properties the scheduler exists to provide:

  1. both runs satisfy the serving accounting identities
     (offered == completed + shed, etc.);
  2. cake's p99 latency is no worse than fifo's (at acceptance scale
     it is >= 2x better; this smoke only guards the direction so a
     scaled-down CI run stays robust);
  3. cake sheds no more than fifo;
  4. cake's deficit ledger conserves exactly:
     charged == refunded + executed (mod 2^64);
  5. a cake rerun is bit-identical, and invariant under
     HYDRA_THREADS=1 vs 4 (virtual time never depends on host
     parallelism).

It then runs the DESIGN.md 16 compile-level A/B: the BERT-heavy cake
mix (two under-provisioned bert groups under closed-loop pressure)
served once with the default Safe per-step plans and once with
`opt=aggressive` ExecPlans, asserting that the aggressive leg's p99
is no worse than safe's, that its deficit ledger still conserves
exactly, and that the aggressive run is bit-identical across reruns
and HYDRA_THREADS=1 vs 4.

Usage: slo_bench.py PATH/TO/serve_cluster [--duration N]
                    [--per-block N] [--machine M] [--json OUT]

The default --duration 2000 keeps the full 10k-tenant overload shape
(so the p99 comparison is exercised under real queueing pressure) but
holds the fifo leg to seconds of wall time; pass --duration 140000
for the full >=1M-request acceptance comparison (the fifo leg then
executes every job for real and takes minutes).
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from gen_workload import make_spec  # noqa: E402


def run_once(binary, machine, serve, threads=4):
    cmd = [binary, "--machine", machine, "--serve", serve, "--json"]
    env = dict(os.environ, HYDRA_THREADS=str(threads))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit("CRASH (exit %d):\n%s"
                         % (proc.returncode, proc.stderr))
    return json.loads(proc.stdout)


def check_accounting(st, label):
    if st["offered"] != st["completed"] + st["shed"]["total"]:
        raise SystemExit("%s: offered %d != completed %d + shed %d"
                         % (label, st["offered"], st["completed"],
                            st["shed"]["total"]))
    fed = st["federation"]
    if st["admitted"] != st["completed"] + fed["shed_after_admit"]:
        raise SystemExit("%s: admitted %d != completed %d "
                         "+ shed_after_admit %d"
                         % (label, st["admitted"], st["completed"],
                            fed["shed_after_admit"]))


def check_ledger(st, label):
    k = st["cake"]
    if k["charged_ticks"] != (k["refunded_ticks"] +
                              k["executed_ticks"]) % (1 << 64):
        raise SystemExit("%s: deficit ledger broken: charged %d != "
                         "refunded %d + executed %d (mod 2^64)"
                         % (label, k["charged_ticks"],
                            k["refunded_ticks"], k["executed_ticks"]))


def bert_spec(duration):
    """The bench/serving.cc kBertHeavySpec shape, duration-scaled."""
    return ("seed=11,duration=%d,sched=cake,queue=256,"
            "group=bert:4,group=bert:4,"
            "tenant=nlp:closed:bert:1:60,"
            "tenant=burst:open:bert:0.012" % duration)


def aggressive_ab(binary, machine, duration):
    """Safe vs opt=aggressive over the BERT-heavy mix."""
    base = bert_spec(duration)
    safe = run_once(binary, machine, base)
    aggr = run_once(binary, machine, "opt=aggressive," + base)
    check_accounting(safe, "bert-safe")
    check_accounting(aggr, "bert-aggressive")
    check_ledger(safe, "bert-safe")
    check_ledger(aggr, "bert-aggressive")

    s99 = safe["latency_ms"]["p99"]
    a99 = aggr["latency_ms"]["p99"]
    if a99 > s99:
        raise SystemExit("compile regression: aggressive p99 %.1f ms "
                         "> safe p99 %.1f ms" % (a99, s99))

    rerun = run_once(binary, machine, "opt=aggressive," + base)
    if aggr["hash"] != rerun["hash"]:
        raise SystemExit("aggressive rerun hash diverged: %s vs %s"
                         % (aggr["hash"], rerun["hash"]))
    serial = run_once(binary, machine, "opt=aggressive," + base,
                      threads=1)
    if aggr["hash"] != serial["hash"]:
        raise SystemExit("aggressive HYDRA_THREADS=1 vs 4 hash "
                         "diverged: %s vs %s"
                         % (aggr["hash"], serial["hash"]))
    return {
        "safe": {"completed": safe["completed"],
                 "p99_ms": s99,
                 "hash": safe["hash"]},
        "aggressive": {"completed": aggr["completed"],
                       "p99_ms": a99,
                       "hash": aggr["hash"]},
        "p99_improvement": s99 / a99 if a99 > 0 else 0.0,
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", help="path to the serve_cluster binary")
    ap.add_argument("--machine", default="hydra-m")
    ap.add_argument("--duration", type=int, default=2000)
    ap.add_argument("--per-block", type=int, default=400)
    ap.add_argument("--json", default=None,
                    help="write the A/B summary to this path")
    ap.add_argument("--bert-duration", type=int, default=4000,
                    help="duration of the opt=aggressive BERT-heavy "
                         "A/B legs (0 skips them)")
    args = ap.parse_args()

    base = make_spec(duration=args.duration,
                     per_block=args.per_block)
    fifo = run_once(args.binary, args.machine, "sched=fifo," + base)
    cake = run_once(args.binary, args.machine, "sched=cake," + base)
    check_accounting(fifo, "fifo")
    check_accounting(cake, "cake")

    f99 = fifo["latency_ms"]["p99"]
    c99 = cake["latency_ms"]["p99"]
    if c99 > f99:
        raise SystemExit("SLO regression: cake p99 %.1f ms > fifo "
                         "p99 %.1f ms" % (c99, f99))
    if cake["shed"]["total"] > fifo["shed"]["total"]:
        raise SystemExit("SLO regression: cake shed %d > fifo shed %d"
                         % (cake["shed"]["total"],
                            fifo["shed"]["total"]))

    check_ledger(cake, "cake")
    k = cake["cake"]

    rerun = run_once(args.binary, args.machine, "sched=cake," + base)
    if cake["hash"] != rerun["hash"]:
        raise SystemExit("cake rerun hash diverged: %s vs %s"
                         % (cake["hash"], rerun["hash"]))
    serial = run_once(args.binary, args.machine, "sched=cake," + base,
                      threads=1)
    if cake["hash"] != serial["hash"]:
        raise SystemExit("HYDRA_THREADS=1 vs 4 hash diverged: %s vs %s"
                         % (cake["hash"], serial["hash"]))

    summary = {
        "duration_s": args.duration,
        "tenants": 25 * args.per_block + 8,
        "fifo": {"offered": fifo["offered"],
                 "completed": fifo["completed"],
                 "shed": fifo["shed"]["total"],
                 "p50_ms": fifo["latency_ms"]["p50"],
                 "p99_ms": f99,
                 "hash": fifo["hash"]},
        "cake": {"offered": cake["offered"],
                 "completed": cake["completed"],
                 "shed": cake["shed"]["total"],
                 "p50_ms": cake["latency_ms"]["p50"],
                 "p99_ms": c99,
                 "preemptions": k["preemptions"],
                 "steals": k["steals"],
                 "kicks": k["kicks"],
                 "hash": cake["hash"]},
        "p99_improvement": f99 / c99 if c99 > 0 else 0.0,
    }
    print("slo bench ok: fifo p99 %.1f ms -> cake p99 %.1f ms "
          "(%.2fx), shed %d -> %d, cake hash %s stable"
          % (f99, c99, summary["p99_improvement"],
             fifo["shed"]["total"], cake["shed"]["total"],
             cake["hash"]))

    if args.bert_duration > 0:
        bert = aggressive_ab(args.binary, args.machine,
                             args.bert_duration)
        summary["bert_heavy"] = bert
        print("aggressive ok: safe p99 %.1f ms -> aggressive p99 "
              "%.1f ms (%.2fx), aggressive hash %s stable"
              % (bert["safe"]["p99_ms"],
                 bert["aggressive"]["p99_ms"],
                 bert["p99_improvement"],
                 bert["aggressive"]["hash"]))

    if args.json:
        with open(args.json, "w") as out:
            json.dump(summary, out, indent=1)


if __name__ == "__main__":
    main()
