/**
 * @file
 * Secure CNN inference: simulate FHE-based ResNet-18 on Hydra-M
 * (8 cards), printing the per-procedure time budget, communication
 * overlap and energy, next to single-card and 64-card runs.
 */

#include <cstdio>

#include "analysis/energy.hh"
#include "baselines/prototypes.hh"
#include "common/table.hh"

using namespace hydra;

int
main()
{
    WorkloadModel wl = makeResNet18();
    std::printf("Workload: %s (%zu steps)\n", wl.name.c_str(),
                wl.steps.size());

    for (auto spec : {hydraSSpec(), hydraMSpec(), hydraLSpec()}) {
        InferenceRunner runner(spec);
        InferenceResult res = runner.run(wl);

        std::printf("\n=== %s: %.2f s end to end, comm overhead %.2f%% "
                    "===\n",
                    spec.name.c_str(), res.seconds(),
                    res.commFraction() * 100);

        TextTable t;
        t.header({"procedure", "time (s)", "share", "comm%"});
        Tick total = res.total.makespan;
        for (size_t k = 0; k < kNumProcKinds; ++k) {
            ProcKind kind = static_cast<ProcKind>(k);
            Tick pt = res.procTime(kind);
            if (!pt)
                continue;
            t.addRow({procName(kind), fmtF(ticksToSeconds(pt), 3),
                      fmtPct(static_cast<double>(pt) / total, 1),
                      fmtPct(res.procCommFraction(kind), 1)});
        }
        t.print();

        EnergyBreakdown e = computeEnergy(res.total, EnergyParams{},
                                          spec.fpga,
                                          spec.cluster.totalCards());
        std::printf("energy: %.1f J total (%.0f%% HBM, %.0f%% NTT, "
                    "%.2f%% NIC)\n",
                    e.total(), e.dynamicShare(e.hbmJ) * 100,
                    e.dynamicShare(e.cuJ[0]) * 100,
                    e.dynamicShare(e.nicJ) * 100);
        std::printf("network: %.1f GiB in %llu messages\n",
                    static_cast<double>(res.total.netBytes) / (1 << 30),
                    static_cast<unsigned long long>(
                        res.total.netMessages));
    }

    std::printf("\nThe five slowest steps on Hydra-M:\n");
    InferenceRunner runner(hydraMSpec());
    InferenceResult res = runner.run(wl);
    std::vector<const StepResult*> steps;
    for (const auto& s : res.steps)
        steps.push_back(&s);
    std::sort(steps.begin(), steps.end(), [](auto* a, auto* b) {
        return a->stats.makespan > b->stats.makespan;
    });
    for (size_t i = 0; i < 5 && i < steps.size(); ++i)
        std::printf("  %-16s %-10s %8.3f s\n", steps[i]->name.c_str(),
                    procName(steps[i]->kind),
                    ticksToSeconds(steps[i]->stats.makespan));
    return 0;
}
