/**
 * @file
 * Secure LLM inference: BERT-base and OPT-6.7B on Hydra-M and Hydra-L,
 * with the attention/FFN matmul mapping statistics the paper's
 * Section III-A describes (PCMM/CCMM spreading + tree reduction).
 */

#include <cstdio>

#include "baselines/prototypes.hh"
#include "common/table.hh"

using namespace hydra;

int
main()
{
    for (const WorkloadModel& wl : {makeBertBase(), makeOpt67B()}) {
        std::printf("\n##### %s #####\n", wl.name.c_str());
        auto [pcmm_lo, pcmm_hi] = wl.parallelismRange(ProcKind::PCMM);
        auto [ccmm_lo, ccmm_hi] = wl.parallelismRange(ProcKind::CCMM);
        std::printf("PCMM parallelism %zu..%zu, CCMM %zu..%zu, "
                    "%zu bootstrap steps\n",
                    pcmm_lo, pcmm_hi, ccmm_lo, ccmm_hi,
                    wl.stepCount(ProcKind::Bootstrap));

        TextTable t;
        t.header({"machine", "total (s)", "PCMM (s)", "CCMM (s)",
                  "NonLin (s)", "Boot (s)", "comm%"});
        for (auto spec : {hydraSSpec(), hydraMSpec(), hydraLSpec()}) {
            InferenceRunner runner(spec);
            InferenceResult res = runner.run(wl);
            t.addRow({spec.name, fmtF(res.seconds(), 2),
                      fmtF(ticksToSeconds(res.procTime(ProcKind::PCMM)),
                           2),
                      fmtF(ticksToSeconds(res.procTime(ProcKind::CCMM)),
                           2),
                      fmtF(ticksToSeconds(
                               res.procTime(ProcKind::NonLinear)),
                           2),
                      fmtF(ticksToSeconds(
                               res.procTime(ProcKind::Bootstrap)),
                           2),
                      fmtPct(res.commFraction(), 2)});
        }
        t.print();
    }

    // Attention-layer anatomy on Hydra-M: one BERT layer's steps.
    std::printf("\nOne BERT-base encoder layer on Hydra-M:\n");
    InferenceRunner runner(hydraMSpec());
    WorkloadModel wl = makeBertBase();
    WorkloadModel layer0;
    layer0.name = "layer0";
    layer0.logSlots = wl.logSlots;
    layer0.maxLimbs = wl.maxLimbs;
    for (const auto& s : wl.steps)
        if (s.name.rfind("l0_", 0) == 0)
            layer0.steps.push_back(s);
    InferenceResult res = runner.run(layer0);
    for (const auto& s : res.steps)
        std::printf("  %-14s %-10s %9.4f s  (comm overhead %5.1f%%)\n",
                    s.name.c_str(), procName(s.kind),
                    ticksToSeconds(s.stats.makespan),
                    s.stats.makespan
                        ? 100.0 *
                              static_cast<double>(s.stats.commOverhead()) /
                              static_cast<double>(s.stats.makespan)
                        : 0.0);
    return 0;
}
