/**
 * @file
 * Scale-out playground: build a custom cluster (servers x cards),
 * map a single procedure onto it, execute, and print a Fig. 5-style
 * per-card timeline of compute vs communication occupancy.
 *
 * Usage: scaleout_playground [servers] [cards_per_server] [faults]
 *
 * The optional third argument is a fault-injection spec (see
 * FaultPlan::parse), e.g. "seed=7,drop=0.3" or "kill=2@0.0005";
 * faulty runs print retry statistics and, on failure, the structured
 * error -- including the full deadlock report when relevant.
 */

#include <cstdio>
#include <cstdlib>

#include "baselines/prototypes.hh"
#include "common/table.hh"
#include "sched/mapping.hh"
#include "sync/executor.hh"

using namespace hydra;

int
main(int argc, char** argv)
{
    size_t servers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2;
    size_t per_server = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    FaultPlan plan =
        FaultPlan::parse(argc > 3 ? argv[3] : std::string());
    if (!servers || !per_server) {
        std::fprintf(stderr,
                     "usage: %s [servers] [cards_per_server] [faults]\n",
                     argv[0]);
        return 1;
    }

    ClusterConfig cluster{servers, per_server};
    size_t cards = cluster.totalCards();
    std::printf("Cluster: %zu server(s) x %zu card(s) = %zu cards\n\n",
                servers, per_server, cards);

    OpCostModel cost(FpgaParams{}, size_t{1} << 16, 4);
    SwitchedNetwork net(NetParams{}, cluster);
    StepMapper mapper(cost, net, cards, 15);
    ClusterExecutor executor(cluster, net);

    struct Demo
    {
        const char* title;
        Step step;
    };
    const Demo demos[] = {
        {"Convolution layer (Fig. 1/2 mapping)",
         Step{ProcKind::ConvBN, "conv", 512, convBnMix(), 12,
              AggKind::BroadcastEach, 0, 1.0, 16}},
        {"Fully-connected layer (tree reduction)",
         Step{ProcKind::FC, "fc", 1511, fcMix(), 12, AggKind::ReduceTree,
              0, 1.0, 1}},
        {"Bootstrapping 2 ciphertexts (Fig. 3 mapping)",
         Step{ProcKind::Bootstrap, "boot", 2, OpMix{}, 18, AggKind::None,
              0, 1.0, 2}},
    };

    executor.setRecordTimeline(true);
    if (!plan.empty()) {
        std::printf("Faults : %s\n\n", plan.describe().c_str());
        executor.setFaultPlan(plan);
    }
    for (const auto& demo : demos) {
        Program prog = mapper.mapStep(demo.step);
        RunResult rr = executor.tryRun(prog);
        if (!rr.ok()) {
            std::printf("--- %s ---\n", demo.title);
            std::printf("run failed [%s]: %s\n",
                        RunError::kindName(rr.error.kind),
                        rr.error.message.c_str());
            if (rr.error.kind == RunError::Kind::Deadlock)
                std::printf("%s\n",
                            rr.error.deadlock.describe().c_str());
            std::printf("\n");
            continue;
        }
        RunStats st = rr.stats;

        std::printf("--- %s ---\n", demo.title);
        if (!plan.empty())
            std::printf("retries %llu (dropped %llu, corrupted %llu, "
                        "timed out %llu)\n",
                        static_cast<unsigned long long>(st.retries),
                        static_cast<unsigned long long>(
                            st.droppedTransfers),
                        static_cast<unsigned long long>(
                            st.corruptedTransfers),
                        static_cast<unsigned long long>(
                            st.timedOutTransfers));
        std::printf("makespan %.3f ms, comm overhead %.3f ms, "
                    "%.2f MiB over the fabric\n",
                    ticksToSeconds(st.makespan) * 1e3,
                    ticksToSeconds(st.commOverhead()) * 1e3,
                    static_cast<double>(st.netBytes) / (1 << 20));

        // Fig. 5-style timeline: '#' compute, '~' transfer, '.' idle.
        const size_t width = 64;
        std::vector<std::string> lanes(cards,
                                       std::string(width, '.'));
        for (const TaskEvent& ev : st.timeline) {
            size_t lo = static_cast<size_t>(
                static_cast<double>(ev.start) / st.makespan * width);
            size_t hi = static_cast<size_t>(
                static_cast<double>(ev.end) / st.makespan * width);
            hi = std::min(std::max(hi, lo + 1), width);
            char mark =
                ev.kind == TaskEvent::Kind::Compute ? '#' : '~';
            for (size_t i = lo; i < hi; ++i) {
                // Compute wins over transfer in a shared bucket.
                if (lanes[ev.card][i] == '.' || mark == '#')
                    lanes[ev.card][i] = mark;
            }
        }
        for (size_t c = 0; c < cards; ++c) {
            double busy = st.makespan
                              ? static_cast<double>(st.computeBusy[c]) /
                                    static_cast<double>(st.makespan)
                              : 0.0;
            std::printf("  card %2zu |%s| %5.1f%% compute, %zu tasks\n",
                        c, lanes[c].c_str(), busy * 100,
                        prog.cards[c].compute.size());
        }
        std::printf("\n");
    }

    std::printf("Try: %s 1 1   (single card)\n"
                "     %s 8 8   (Hydra-L)\n",
                argv[0], argv[0]);
    return 0;
}
