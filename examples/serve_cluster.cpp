/**
 * @file
 * Multi-tenant serving driver: carve one machine into card groups (or
 * a whole federation of identical clusters), push a deterministic
 * request stream through the admission queue, and report throughput,
 * utilization, p50/p95/p99 latency, and federation fault accounting.
 *
 * Usage:
 *   serve_cluster [--machine NAME]      (see --list-machines)
 *                 [--serve SPEC]        (serving spec; see below)
 *                 [--serve-file PATH]   (read the serving spec from a
 *                  file — newlines are treated as commas, so bulk
 *                  10k-tenant specs from scripts/gen_workload.py can
 *                  be line-wrapped)
 *                 [--faults SPEC]       (fault plan; kill=CARD@SECONDS
 *                  ticks are absolute serve-clock times)
 *                 [--clusters N]        (federate N identical clusters
 *                  behind the health-gated routing tier; shorthand for
 *                  clusters=N in the serve spec)
 *                 [--cluster-faults SPEC] (cluster-granularity faults:
 *                  ckill=CLUSTER@SECONDS, cpart=CLUSTER@SECONDS:HEAL_S;
 *                  merged into --faults)
 *                 [--max-attempts N]    (per-transfer retry budget)
 *                 [--json]              (one JSON object on stdout)
 *                 [--dump-program]      (print each fleet group's
 *                  compiled ExecPlan unit Programs — queue depths,
 *                  message counts, bytes, pass deltas — and exit)
 *                 [--list-machines] [--list-workloads]
 *
 * The serve SPEC is a comma list (defaults in parentheses):
 *   seed=N (1)  clusters=N (1)  duration=S (5)  queue=N (64)
 *   requests=N (200000)
 *   sched=fifo|cake[:WAIT_S[:KICK_S]]   admission policy (fifo); cake
 *                                       is the deficit scheduler of
 *                                       DESIGN.md §14 (wait budget 1s,
 *                                       starvation kick cap 10s)
 *   tenant=NAME:open:WL:RATE            open-loop Poisson, RATE req/s
 *   tenant=NAME:closed:WL:CLIENTS[:THINK_S]
 *   tenants=COUNT:PREFIX:MODE:WL:ARG[...]  bulk block: COUNT clones
 *                                       named PREFIX#0..PREFIX#COUNT-1
 *   prio=NAME:P                         priority tier (0 highest);
 *                                       a trailing '*' prefix-matches
 *   opt=[NAME:]safe|aggressive          compile level: spec-wide
 *                                       default or per-tenant (NAME*
 *                                       prefix-matches); aggressive
 *                                       runs the cross-step passes
 *   at=SEC:NAME:WL                      trace-replay arrival
 *   group=WL:CARDS[:MIN]                partition plan (else even split)
 *
 * Example: a 4-cluster federation losing one cluster mid-run:
 *   serve_cluster --machine hydra-m --clusters 4 \
 *     --serve "duration=120,tenant=pool:closed:resnet18:8:0" \
 *     --cluster-faults "ckill=1@30" --json
 *
 * Example: the fifo-vs-cake SLO A/B over a generated 10k-tenant spec:
 *   scripts/gen_workload.py --duration 140000 > slo.spec
 *   serve_cluster --machine hydra-m --serve-file slo.spec --json
 *   scripts/gen_workload.py --duration 140000 --sched cake > slo2.spec
 *   serve_cluster --machine hydra-m --serve-file slo2.spec --json
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/prototypes.hh"
#include "common/logging.hh"
#include "sched/execplan.hh"
#include "sched/progcache.hh"
#include "serve/partition.hh"
#include "serve/sim.hh"
#include "workloads/model.hh"

using namespace hydra;

namespace {

/** Compile and print every fleet group's ExecPlan — the unit Programs
 *  the serving layer preloads and reuses across jobs (--dump-program).
 *  One plan is printed per distinct opt level the spec's tenants
 *  request for the group's workload, so an `opt=aggressive` tenant's
 *  fused multi-layer units show up next to the Safe per-step plan. */
void
dumpGroupPrograms(const PrototypeSpec& spec, const ServeSpec& serve)
{
    std::vector<std::string> wlNames = serve.workloadTable();
    FleetPartition fleet(spec, serve, wlNames);
    for (const auto& g : fleet.groups()) {
        WorkloadModel wl = workloadByName(wlNames[g.workload]);
        PrototypeSpec sub = groupSubSpec(spec, g.cards);
        OpCostModel cost(sub.fpga, size_t{1} << 16, sub.dnum);
        std::unique_ptr<NetworkModel> net = sub.makeNetwork();
        std::vector<OptLevel> levels;
        for (const auto& t : serve.tenants)
            if (t.workload == wlNames[g.workload] &&
                std::find(levels.begin(), levels.end(), t.opt) ==
                    levels.end())
                levels.push_back(t.opt);
        if (levels.empty())
            levels.push_back(OptLevel::Safe);
        for (OptLevel lv : levels) {
            ExecPlan plan = compilePlan(sub, cost, *net, wl, lv);
            std::printf("group %zu: %s on %zu card(s) "
                        "(%zu server(s) x %zu), opt=%s, %zu unit(s)\n",
                        g.id, wl.name.c_str(), g.cards.size(),
                        sub.cluster.servers, sub.cluster.cardsPerServer,
                        optLevelName(lv), plan.size());
            for (size_t ui = 0; ui < plan.units.size(); ++ui) {
                const ExecUnit& u = plan.units[ui];
                std::printf("  unit %3zu %-24s [%s, %zu step(s)]\n",
                            ui, u.name.c_str(), procName(u.lead),
                            u.steps.size());
                std::printf("%s\n",
                            describeProgram(u.compiled->program,
                                            &u.compiled->report)
                                .c_str());
            }
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string machine = "hydra-m";
    std::string serveSpecStr =
        "duration=300,tenant=vision:open:resnet18:0.05,"
        "tenant=nlp:open:bert:0.005";
    std::string faultSpecStr;
    std::string clusterFaultStr;
    size_t clustersOverride = 0;
    RetryPolicy retry;
    bool json = false;
    bool dumpProgram = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--machine")
            machine = next();
        else if (arg == "--serve")
            serveSpecStr = next();
        else if (arg == "--serve-file") {
            std::string path = next();
            std::ifstream in(path);
            if (!in)
                fatal("--serve-file: cannot read '%s'", path.c_str());
            std::stringstream buf;
            buf << in.rdbuf();
            serveSpecStr.clear();
            // Newlines (and a trailing one) act as token separators so
            // generated specs can be line-wrapped for readability.
            for (char c : buf.str())
                serveSpecStr += (c == '\n' || c == '\r') ? ',' : c;
            while (!serveSpecStr.empty() &&
                   serveSpecStr.back() == ',')
                serveSpecStr.pop_back();
            size_t lead = serveSpecStr.find_first_not_of(',');
            serveSpecStr.erase(0, lead == std::string::npos
                                      ? serveSpecStr.size()
                                      : lead);
            std::string squashed;
            for (char c : serveSpecStr)
                if (c != ',' || squashed.empty() ||
                    squashed.back() != ',')
                    squashed += c;
            serveSpecStr = std::move(squashed);
        } else if (arg == "--faults")
            faultSpecStr = next();
        else if (arg == "--clusters") {
            std::string v = next();
            if (!parseSize(v, clustersOverride) || clustersOverride == 0)
                fatal("--clusters wants an integer >= 1, got '%s'",
                      v.c_str());
        } else if (arg == "--cluster-faults")
            clusterFaultStr = next();
        else if (arg == "--max-attempts")
            retry.maxAttempts = static_cast<uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--json")
            json = true;
        else if (arg == "--dump-program")
            dumpProgram = true;
        else if (arg == "--list-machines") {
            for (const auto& n : machineNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (arg == "--list-workloads") {
            for (const auto& n : workloadNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else
            fatal("unknown argument '%s' (see the file header)",
                  arg.c_str());
    }

    PrototypeSpec spec = machineByName(machine);
    ServeSpec serve = ServeSpec::parse(serveSpecStr);
    if (clustersOverride)
        serve.clusters = clustersOverride;
    FaultPlan faults = FaultPlan::parse(faultSpecStr);
    if (!clusterFaultStr.empty()) {
        // --cluster-faults is plain fault-spec syntax, merged on top of
        // --faults so the two flags compose.
        FaultPlan extra = FaultPlan::parse(clusterFaultStr);
        for (const auto& [c, t] : extra.clusterKillAt)
            faults.clusterKillAt[c] = t;
        for (const auto& [c, p] : extra.clusterPartitionAt)
            faults.clusterPartitionAt[c] = p;
        for (const auto& [c, t] : extra.cardFailAt)
            faults.cardFailAt[c] = t;
    }

    if (dumpProgram) {
        std::printf("machine : %s, serve: %s\n\n", spec.name.c_str(),
                    serve.describe().c_str());
        dumpGroupPrograms(spec, serve);
        return 0;
    }

    ServeSim sim(std::move(spec), serve, faults, retry);
    ServeStats stats = sim.run();

    if (json) {
        std::printf("%s\n",
                    stats.toJson(sim.spec().name, serve.describe())
                        .c_str());
        return 0;
    }

    std::printf("machine : %s (%zu server(s) x %zu card(s))",
                sim.spec().name.c_str(), sim.spec().cluster.servers,
                sim.spec().cluster.cardsPerServer);
    if (serve.clusters > 1)
        std::printf(" x %zu cluster(s)", serve.clusters);
    std::printf("\nserve   : %s\n", serve.describe().c_str());
    if (!faults.empty())
        std::printf("faults  : %s\n", faults.describe().c_str());
    std::printf("\n%s", stats.describe().c_str());
    return 0;
}
