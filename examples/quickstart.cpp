/**
 * @file
 * Quickstart: encrypt a vector with the CKKS library, compute on it
 * homomorphically, decrypt -- then model the very same operations on a
 * single Hydra card and print the cycle-level cost.
 */

#include <cstdio>

#include "arch/opcost.hh"
#include "fhe/encryptor.hh"
#include "fhe/evaluator.hh"
#include "fhe/keygen.hh"

using namespace hydra;

int
main()
{
    // --- 1. Functional CKKS ------------------------------------------
    CkksParams params;
    params.n = 1 << 12; // 2048 slots
    params.levels = 6;
    CkksContext ctx(params);
    std::printf("Context: %s\n", params.describe().c_str());

    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    EvalKey relin = keygen.relinKey(sk);
    GaloisKeys galois = keygen.galoisKeys(sk, {1, 4});

    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx, encoder);
    eval.setRelinKey(&relin);
    eval.setGaloisKeys(&galois);
    OpCounter counter;
    eval.setCounter(&counter);

    // Encrypt [0.00, 0.01, 0.02, ...].
    std::vector<double> v(ctx.slots());
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = 0.01 * static_cast<double>(i % 100);
    Ciphertext ct = encryptor.encrypt(
        encoder.encode(v, params.scale(), ctx.levels()));

    // (rotate(x, 1) + x)^2 * 0.25 -- a tiny sliding-window average.
    Ciphertext shifted = eval.rotate(ct, 1);
    Ciphertext sum = eval.add(ct, shifted);
    Ciphertext sq = eval.rescale(eval.mulRelin(sum, sum));
    Ciphertext out = eval.mulConstantRescale(sq, cplx(0.25, 0.0),
                                             params.scale());

    auto got = encoder.decode(decryptor.decrypt(out));
    double worst = 0;
    for (size_t i = 0; i + 1 < v.size(); ++i) {
        double expect = 0.25 * (v[i] + v[i + 1]) * (v[i] + v[i + 1]);
        worst = std::max(worst, std::abs(got[i].real() - expect));
    }
    std::printf("homomorphic sliding average: max error %.2e "
                "(ops: %s)\n",
                worst, counter.summary().c_str());

    // --- 2. The same ops on the modelled Hydra card -------------------
    OpCostModel model(FpgaParams{}, size_t{1} << 16, 4);
    struct Row
    {
        const char* name;
        HeOpType op;
        size_t limbs;
    };
    const Row rows[] = {
        {"Rotate", HeOpType::Rotate, 24},
        {"HAdd", HeOpType::HAdd, 24},
        {"CMult", HeOpType::CMult, 24},
        {"Rescale", HeOpType::Rescale, 24},
        {"PMult", HeOpType::PMult, 23},
    };
    std::printf("\nModelled Hydra card (N = 2^16, 512 lanes, 300 MHz):\n");
    std::printf("%-10s %12s %12s %12s\n", "op", "cycles", "HBM MiB",
                "latency us");
    for (const Row& r : rows) {
        OpCost c = model.cost(r.op, r.limbs);
        std::printf("%-10s %12llu %12.1f %12.1f\n", r.name,
                    static_cast<unsigned long long>(c.cycles),
                    static_cast<double>(c.hbmBytes) / (1 << 20),
                    ticksToSeconds(model.latency(c)) * 1e6);
    }
    return 0;
}
