/**
 * @file
 * Bootstrap explorer: (1) run a REAL CKKS bootstrap with the functional
 * library at laptop scale and verify the refreshed message; (2) sweep
 * the Eq. 1 Radix/bs space for a chosen slot count and card count and
 * print the cost surface with its optimum (paper Table V methodology).
 */

#include <cstdio>

#include "baselines/prototypes.hh"
#include "common/table.hh"
#include "fhe/bootstrap.hh"
#include "fhe/encryptor.hh"
#include "fhe/keygen.hh"
#include "model/dft_model.hh"

using namespace hydra;

int
main()
{
    // --- 1. Real bootstrap -------------------------------------------
    CkksParams params = CkksParams::bootstrapTest();
    params.n = 1 << 8;
    CkksContext ctx(params);
    std::printf("Functional bootstrap at %s\n",
                params.describe().c_str());

    CkksEncoder encoder(ctx);
    Bootstrapper boot(ctx, encoder);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    EvalKey relin = keygen.relinKey(sk);
    GaloisKeys galois = keygen.galoisKeys(sk, boot.requiredRotations());
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx, encoder);
    eval.setRelinKey(&relin);
    eval.setGaloisKeys(&galois);

    std::vector<double> msg(ctx.slots());
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = 0.009 * std::sin(0.37 * static_cast<double>(i));
    Ciphertext exhausted = encryptor.encrypt(
        encoder.encode(msg, params.scale(), /*n_limbs=*/1));
    std::printf("input level: %zu limb(s)\n", exhausted.level());

    Ciphertext fresh = boot.bootstrap(eval, exhausted);
    auto got = encoder.decode(decryptor.decrypt(fresh));
    double worst = 0;
    for (size_t i = 0; i < msg.size(); ++i)
        worst = std::max(worst, std::abs(got[i].real() - msg[i]));
    std::printf("refreshed level: %zu limbs, max error %.2e "
                "(pipeline depth %zu)\n\n",
                fresh.level(), worst, boot.depth());

    // --- 2. Eq. 1 cost surface ---------------------------------------
    size_t log_slots = 15;
    OpCostModel cost(FpgaParams{}, size_t{1} << 16, 4);
    for (size_t cards : {1, 8, 64}) {
        ClusterConfig cfg{cards <= 8 ? 1 : cards / 8,
                          cards <= 8 ? cards : 8};
        SwitchedNetwork net(NetParams{}, cfg);
        DftOpTimes t = DftOpTimes::fromCostModel(cost, net, 18);

        TextTable tab(strf("Single DFT level, %zu card(s), logSlots %zu "
                           "(ms; * = per-radix optimum)",
                           cards, log_slots));
        std::vector<std::string> hdr = {"Radix\\bs"};
        for (size_t bs = 1; bs <= 16; bs <<= 1)
            hdr.push_back(std::to_string(bs));
        tab.header(hdr);
        for (size_t lg = 3; lg <= 7; ++lg) {
            size_t radix = size_t{1} << lg;
            double best = 1e30;
            size_t best_bs = 1;
            for (size_t bs = 1; bs <= 16; bs <<= 1) {
                double v = dftLevelTime({radix, bs}, cards, t);
                if (v < best) {
                    best = v;
                    best_bs = bs;
                }
            }
            std::vector<std::string> row = {std::to_string(radix)};
            for (size_t bs = 1; bs <= 16; bs <<= 1) {
                double v = dftLevelTime({radix, bs}, cards, t) * 1e3;
                row.push_back(fmtF(v, 2) + (bs == best_bs ? "*" : ""));
            }
            tab.addRow(row);
        }
        tab.print();

        DftPlan plan = optimizeDftPlan(3, log_slots, cards, t);
        std::printf("optimal 3-level plan: %s -> %.2f ms\n\n",
                    plan.describe().c_str(),
                    dftTime(plan, cards, t) * 1e3);
    }
    return 0;
}
