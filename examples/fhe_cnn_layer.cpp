/**
 * @file
 * A complete encrypted CNN layer, end to end and functional: 3x3
 * ConvBN -> Chebyshev soft-ReLU -> 2x2 average pooling, computed on
 * real ciphertexts and verified against the plaintext pipeline.
 * This is the single-ciphertext building block that the Hydra
 * scheduler distributes across cards (paper Fig. 1).
 */

#include <cstdio>

#include "fhe/chebyshev.hh"
#include "fhe/convolution.hh"
#include "fhe/encryptor.hh"
#include "fhe/keygen.hh"

using namespace hydra;

int
main()
{
    CkksParams params;
    params.n = 1 << 10; // 512 slots = 32 x 16 image
    params.levels = 10;
    CkksContext ctx(params);
    std::printf("Context: %s\n", params.describe().c_str());

    size_t h = 32, w = 16;
    CkksEncoder encoder(ctx);

    // Layer parameters: edge-detect-ish kernel with BN bias folded in.
    ConvKernel kernel;
    kernel.k = 3;
    kernel.weights = {0.05, 0.10, 0.05, 0.10, 0.40, 0.10,
                      0.05, 0.10, 0.05};
    kernel.bias = -0.02;
    ChebyshevPoly act = chebyshevFit(
        [](double x) { return softRelu(x); }, 15, -1.0, 1.0);

    // Keys: conv + pooling rotations.
    std::vector<int> rotations = convRotations(w, 3);
    for (int r : convRotations(w, 2))
        rotations.push_back(r);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    EvalKey relin = keygen.relinKey(sk);
    GaloisKeys galois = keygen.galoisKeys(sk, rotations);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx, encoder);
    eval.setRelinKey(&relin);
    eval.setGaloisKeys(&galois);
    OpCounter counter;
    eval.setCounter(&counter);

    // Synthetic input "image".
    Rng rng(2025);
    std::vector<double> image(h * w);
    for (size_t i = 0; i < image.size(); ++i)
        image[i] = 0.4 * std::sin(0.11 * static_cast<double>(i)) +
                   rng.uniformReal(-0.1, 0.1);

    Ciphertext ct = encryptor.encrypt(
        encoder.encode(image, params.scale(), ctx.levels()));
    std::printf("input: %zux%zu image, level %zu\n", h, w, ct.level());

    Ciphertext conv = conv2d(eval, ct, kernel, h, w);
    Ciphertext activated = evalChebyshev(eval, conv, act);
    Ciphertext pooled = avgPool(eval, activated, 2, h, w);
    std::printf("output level %zu (consumed %zu)\n", pooled.level(),
                ctx.levels() - pooled.level());
    std::printf("ciphertext ops: %s\n", counter.summary().c_str());

    // Plaintext reference.
    auto ref = conv2dRef(image, kernel, h, w);
    for (auto& x : ref)
        x = act(x);
    ref = avgPoolRef(ref, 2, h, w);

    auto got = encoder.decode(decryptor.decrypt(pooled));
    double worst = 0.0;
    for (size_t j = 0; j < ref.size(); ++j)
        worst = std::max(worst, std::abs(got[j].real() - ref[j]));
    std::printf("max error vs plaintext pipeline: %.2e %s\n", worst,
                worst < 5e-2 ? "(OK)" : "(TOO LARGE)");

    // What the scheduler sees: the same layer as an op mix.
    std::printf("\nAs scheduled by Hydra: this layer is one ConvBN unit\n"
                "(Table I: 8 Rot, 2 PMult, 7 HAdd per multiplexed kernel\n"
                "group) plus one Non-linear unit (8 CMult, 15 HAdd).\n");
    return worst < 5e-2 ? 0 : 1;
}
