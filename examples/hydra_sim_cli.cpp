/**
 * @file
 * Command-line simulator driver: pick a machine and a workload, get
 * the full report (per-procedure budget, comm overhead, energy).
 *
 * Usage:
 *   hydra_sim_cli [--machine hydra-s|hydra-m|hydra-l|fab-s|fab-m|
 *                  fab-l|poseidon]
 *                 [--workload resnet18|resnet50|bert|opt|resnet20]
 *                 [--cards N]          (custom Hydra with N cards)
 *                 [--fused]            (Section IV-D preloading)
 *                 [--faults SPEC]      (fault injection; SPEC is a
 *                  comma list: seed=N,drop=P,corrupt=P,degrade=F,
 *                  dropfirst=K,straggle=CARD:F,kill=CARD@SECONDS)
 *                 [--max-attempts N]   (per-transfer retry budget)
 *                 [--dump-program]     (print each step's compiled
 *                  Program: per-card queue depths, message counts,
 *                  bytes, and the optimizer's pass deltas; no run)
 *                 [--opt LEVEL]        (pass level for --dump-program,
 *                  --model and --dump-graph:
 *                  none|safe|aggressive; default safe)
 *                 [--model NAME]       (run a declarative-registry
 *                  model through the network compiler / graph runner
 *                  instead of the step-at-a-time path)
 *                 [--dump-graph]       (print the model's NetworkGraph
 *                  IR — layers, levels, rotations, edges — after the
 *                  --opt passes; no run.  Without --model the
 *                  --workload step list is lifted into a graph)
 *                 [--json]             (emit --dump-graph as JSON)
 *                 [--list-machines]    (print machine registry, exit)
 *                 [--list-workloads]   (print workload registry, exit)
 *                 [--list-models]      (print declarative model
 *                  registry, exit)
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/energy.hh"
#include "baselines/prototypes.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "math/simd/simd.hh"
#include "sched/graph/modelspec.hh"
#include "sched/graph/netcompile.hh"
#include "sched/progcache.hh"

using namespace hydra;

namespace {

PrototypeSpec
resolveMachine(const std::string& name, size_t cards)
{
    if (cards) {
        size_t servers = cards <= 8 ? 1 : (cards + 7) / 8;
        size_t per = cards <= 8 ? cards : 8;
        return hydraPrototype("Hydra-" + std::to_string(cards), servers,
                              per);
    }
    return machineByName(name);
}

void
printRegistry(const char* what, const std::vector<std::string>& names)
{
    std::printf("%s:\n", what);
    for (const auto& n : names)
        std::printf("  %s\n", n.c_str());
}

OptLevel
parseOptLevel(const std::string& s)
{
    if (s == "none")
        return OptLevel::None;
    if (s == "safe")
        return OptLevel::Safe;
    if (s == "aggressive")
        return OptLevel::Aggressive;
    fatal("unknown opt level '%s' (none|safe|aggressive)", s.c_str());
}

/** Compile every step and print the per-card program shape plus the
 *  optimizer's pass deltas (the --dump-program flag). */
void
dumpPrograms(const PrototypeSpec& spec, const WorkloadModel& wl,
             OptLevel level)
{
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    std::unique_ptr<NetworkModel> net = spec.makeNetwork();
    for (size_t si = 0; si < wl.steps.size(); ++si) {
        const Step& step = wl.steps[si];
        CompiledStep cs = compileStep(cost, *net,
                                      spec.cluster.totalCards(),
                                      wl.logSlots, spec.mapping, step,
                                      level);
        std::printf("step %3zu %-24s [%s]\n", si, step.name.c_str(),
                    procName(step.kind));
        std::printf("%s\n", describeProgram(cs.program,
                                            &cs.report).c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string machine = "hydra-m";
    std::string workload = "resnet18";
    std::string model;
    std::string faultSpec;
    size_t cards = 0;
    bool fused = false;
    bool dumpProgram = false;
    bool dumpGraph = false;
    bool json = false;
    OptLevel optLevel = OptLevel::Safe;
    RetryPolicy retry;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--machine")
            machine = next();
        else if (arg == "--workload")
            workload = next();
        else if (arg == "--model")
            model = next();
        else if (arg == "--dump-graph")
            dumpGraph = true;
        else if (arg == "--json")
            json = true;
        else if (arg == "--cards")
            cards = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--fused")
            fused = true;
        else if (arg == "--dump-program")
            dumpProgram = true;
        else if (arg == "--opt")
            optLevel = parseOptLevel(next());
        else if (arg == "--faults")
            faultSpec = next();
        else if (arg == "--max-attempts")
            retry.maxAttempts = static_cast<uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--list-machines") {
            printRegistry("machines", machineNames());
            return 0;
        } else if (arg == "--list-workloads") {
            printRegistry("workloads", workloadNames());
            return 0;
        } else if (arg == "--list-models") {
            printRegistry("models", modelSpecNames());
            return 0;
        } else
            fatal("unknown argument '%s' (see the file header)",
                  arg.c_str());
    }

    PrototypeSpec spec = resolveMachine(machine, cards);

    // The graph path: resolve a declarative model (or lift the
    // workload's step list) into the NetworkGraph IR.
    NetworkGraph graph;
    if (!model.empty()) {
        SpecError err;
        if (!tryModelGraphByName(model, graph, err)) {
            std::fprintf(stderr, "bad --model: %s\n",
                         err.describe().c_str());
            return 1;
        }
    }
    WorkloadModel wl =
        model.empty() ? resolveWorkloadModel(workload) : graph.toModel();
    if (model.empty() && dumpGraph)
        graph = NetworkGraph::fromModel(wl);

    if (dumpGraph) {
        if (optLevel == OptLevel::Aggressive) {
            // Show the post-pass graph: what actually compiles.
            OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
            std::unique_ptr<NetworkModel> net = spec.makeNetwork();
            CompiledNetwork cn =
                compileNetwork(spec, cost, *net, graph, optLevel);
            graph = cn.graph;
            if (!json)
                std::printf("%s\n", cn.report.describe().c_str());
        }
        std::printf("%s\n", json ? graph.toJson().c_str()
                                 : graph.describe().c_str());
        return 0;
    }
    if (json)
        fatal("--json only applies to --dump-graph");

    if (dumpProgram) {
        std::printf("machine : %s, workload: %s, opt level: %s\n\n",
                    spec.name.c_str(), wl.name.c_str(),
                    optLevelName(optLevel));
        dumpPrograms(spec, wl, optLevel);
        return 0;
    }

    InferenceRunner runner(spec);

    std::printf("machine : %s (%zu server(s) x %zu card(s))\n",
                spec.name.c_str(), spec.cluster.servers,
                spec.cluster.cardsPerServer);
    std::printf("workload: %s (%zu steps)\n", wl.name.c_str(),
                wl.steps.size());
    std::printf("simd    : %s (best available %s)\n\n",
                simdLevelName(simd::activeLevel()),
                simdLevelName(simd::bestAvailableLevel()));

    FaultPlan plan = FaultPlan::parse(faultSpec);
    if (!plan.empty())
        std::printf("faults  : %s\n\n", plan.describe().c_str());
    if (!model.empty() && (fused || !plan.empty()))
        fatal("--model runs through the graph compiler; --fused and "
              "--faults apply to the step-at-a-time path");

    if (fused) {
        if (!plan.empty()) {
            RunResult rr = runner.runFused(wl, plan, retry);
            if (!rr.ok()) {
                std::printf("fused run failed [%s]: %s\n",
                            RunError::kindName(rr.error.kind),
                            rr.error.message.c_str());
                return 1;
            }
            std::printf("fused execution: %.3f s (%" PRIu64
                        " retries, %" PRIu64 " drops)\n",
                        ticksToSeconds(rr.stats.makespan),
                        rr.stats.retries, rr.stats.droppedTransfers);
            return 0;
        }
        RunStats st = runner.runFused(wl);
        std::printf("fused execution: %.3f s, comm overhead %.2f%%\n",
                    ticksToSeconds(st.makespan),
                    st.makespan ? 100.0 *
                                      static_cast<double>(
                                          st.commOverhead()) /
                                      static_cast<double>(st.makespan)
                                : 0.0);
        return 0;
    }

    NetOptReport netReport;
    InferenceResult res;
    if (!model.empty()) {
        res = runner.runGraph(graph, optLevel, &netReport);
        std::printf("graph   : %zu layer(s), %s\n\n", graph.nodes.size(),
                    netReport.describe().c_str());
    } else {
        res = plan.empty() ? runner.run(wl) : runner.run(wl, plan, retry);
    }
    if (!res.ok()) {
        std::printf("run failed [%s]: %s\n",
                    RunError::kindName(res.error.kind),
                    res.error.message.c_str());
        if (res.error.kind == RunError::Kind::Deadlock)
            std::printf("%s\n", res.error.deadlock.describe().c_str());
        return 1;
    }
    std::printf("end to end: %.3f s, comm overhead %.2f%%, "
                "%.2f GiB moved\n\n",
                res.seconds(), res.commFraction() * 100,
                static_cast<double>(res.total.netBytes) / (1 << 30));
    if (!plan.empty()) {
        std::printf("fault recovery: %" PRIu64 " retries (%" PRIu64
                    " dropped, %" PRIu64 " corrupted, %" PRIu64
                    " timed out)\n",
                    res.total.retries, res.total.droppedTransfers,
                    res.total.corruptedTransfers,
                    res.total.timedOutTransfers);
        if (res.degraded()) {
            std::printf("degraded: lost card(s)");
            for (size_t c : res.failedCards)
                std::printf(" %zu", c);
            std::printf(", %zu re-dispatch(es), recovery penalty "
                        "%.3f s\n",
                        res.redispatches,
                        ticksToSeconds(res.recoveryPenalty));
        }
        std::printf("\n");
    }

    TextTable t("per-procedure budget");
    t.header({"procedure", "steps", "time (s)", "share", "comm%"});
    for (size_t k = 0; k < kNumProcKinds; ++k) {
        ProcKind kind = static_cast<ProcKind>(k);
        Tick pt = res.procTime(kind);
        if (!pt)
            continue;
        size_t nsteps = 0;
        for (const auto& s : res.steps)
            nsteps += s.kind == kind;
        t.addRow({procName(kind), std::to_string(nsteps),
                  fmtF(ticksToSeconds(pt), 3),
                  fmtPct(static_cast<double>(pt) /
                             static_cast<double>(res.total.makespan),
                         1),
                  fmtPct(res.procCommFraction(kind), 1)});
    }
    t.print();

    EnergyBreakdown e = computeEnergy(res.total, EnergyParams{},
                                      spec.fpga,
                                      spec.cluster.totalCards());
    std::printf("\nenergy: %.1f J (HBM %.0f%%, NTT %.0f%%, NIC %.2f%%)\n",
                e.total(), e.dynamicShare(e.hbmJ) * 100,
                e.dynamicShare(e.cuJ[0]) * 100,
                e.dynamicShare(e.nicJ) * 100);
    return 0;
}
