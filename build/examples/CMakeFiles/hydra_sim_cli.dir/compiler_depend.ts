# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hydra_sim_cli.
