file(REMOVE_RECURSE
  "CMakeFiles/hydra_sim_cli.dir/hydra_sim_cli.cpp.o"
  "CMakeFiles/hydra_sim_cli.dir/hydra_sim_cli.cpp.o.d"
  "hydra_sim_cli"
  "hydra_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
