# Empty compiler generated dependencies file for hydra_sim_cli.
# This may be replaced when dependencies are built.
