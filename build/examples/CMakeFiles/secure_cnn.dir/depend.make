# Empty dependencies file for secure_cnn.
# This may be replaced when dependencies are built.
