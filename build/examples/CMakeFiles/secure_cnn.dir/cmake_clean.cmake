file(REMOVE_RECURSE
  "CMakeFiles/secure_cnn.dir/secure_cnn.cpp.o"
  "CMakeFiles/secure_cnn.dir/secure_cnn.cpp.o.d"
  "secure_cnn"
  "secure_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
