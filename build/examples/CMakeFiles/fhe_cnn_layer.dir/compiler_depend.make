# Empty compiler generated dependencies file for fhe_cnn_layer.
# This may be replaced when dependencies are built.
