file(REMOVE_RECURSE
  "CMakeFiles/fhe_cnn_layer.dir/fhe_cnn_layer.cpp.o"
  "CMakeFiles/fhe_cnn_layer.dir/fhe_cnn_layer.cpp.o.d"
  "fhe_cnn_layer"
  "fhe_cnn_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_cnn_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
