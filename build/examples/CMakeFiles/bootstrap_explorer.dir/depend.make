# Empty dependencies file for bootstrap_explorer.
# This may be replaced when dependencies are built.
