file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_explorer.dir/bootstrap_explorer.cpp.o"
  "CMakeFiles/bootstrap_explorer.dir/bootstrap_explorer.cpp.o.d"
  "bootstrap_explorer"
  "bootstrap_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
