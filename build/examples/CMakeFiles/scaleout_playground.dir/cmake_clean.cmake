file(REMOVE_RECURSE
  "CMakeFiles/scaleout_playground.dir/scaleout_playground.cpp.o"
  "CMakeFiles/scaleout_playground.dir/scaleout_playground.cpp.o.d"
  "scaleout_playground"
  "scaleout_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
