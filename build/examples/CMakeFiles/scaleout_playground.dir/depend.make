# Empty dependencies file for scaleout_playground.
# This may be replaced when dependencies are built.
