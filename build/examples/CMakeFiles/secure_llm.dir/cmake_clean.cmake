file(REMOVE_RECURSE
  "CMakeFiles/secure_llm.dir/secure_llm.cpp.o"
  "CMakeFiles/secure_llm.dir/secure_llm.cpp.o.d"
  "secure_llm"
  "secure_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
