# Empty compiler generated dependencies file for secure_llm.
# This may be replaced when dependencies are built.
