file(REMOVE_RECURSE
  "CMakeFiles/fhe_matmul_test.dir/fhe_matmul_test.cc.o"
  "CMakeFiles/fhe_matmul_test.dir/fhe_matmul_test.cc.o.d"
  "fhe_matmul_test"
  "fhe_matmul_test.pdb"
  "fhe_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
