# Empty compiler generated dependencies file for fhe_matmul_test.
# This may be replaced when dependencies are built.
