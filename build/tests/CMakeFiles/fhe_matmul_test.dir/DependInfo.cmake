
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fhe_matmul_test.cc" "tests/CMakeFiles/fhe_matmul_test.dir/fhe_matmul_test.cc.o" "gcc" "tests/CMakeFiles/fhe_matmul_test.dir/fhe_matmul_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fhe/CMakeFiles/hydra_fhe.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/hydra_math.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hydra_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
