# Empty dependencies file for fhe_encoder_test.
# This may be replaced when dependencies are built.
