file(REMOVE_RECURSE
  "CMakeFiles/fhe_encoder_test.dir/fhe_encoder_test.cc.o"
  "CMakeFiles/fhe_encoder_test.dir/fhe_encoder_test.cc.o.d"
  "fhe_encoder_test"
  "fhe_encoder_test.pdb"
  "fhe_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
