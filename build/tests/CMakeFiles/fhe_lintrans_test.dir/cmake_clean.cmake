file(REMOVE_RECURSE
  "CMakeFiles/fhe_lintrans_test.dir/fhe_lintrans_test.cc.o"
  "CMakeFiles/fhe_lintrans_test.dir/fhe_lintrans_test.cc.o.d"
  "fhe_lintrans_test"
  "fhe_lintrans_test.pdb"
  "fhe_lintrans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_lintrans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
