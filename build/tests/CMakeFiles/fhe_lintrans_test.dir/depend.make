# Empty dependencies file for fhe_lintrans_test.
# This may be replaced when dependencies are built.
