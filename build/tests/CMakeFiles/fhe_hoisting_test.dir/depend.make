# Empty dependencies file for fhe_hoisting_test.
# This may be replaced when dependencies are built.
