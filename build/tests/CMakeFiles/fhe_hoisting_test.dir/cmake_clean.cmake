file(REMOVE_RECURSE
  "CMakeFiles/fhe_hoisting_test.dir/fhe_hoisting_test.cc.o"
  "CMakeFiles/fhe_hoisting_test.dir/fhe_hoisting_test.cc.o.d"
  "fhe_hoisting_test"
  "fhe_hoisting_test.pdb"
  "fhe_hoisting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_hoisting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
