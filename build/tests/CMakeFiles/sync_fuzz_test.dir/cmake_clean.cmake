file(REMOVE_RECURSE
  "CMakeFiles/sync_fuzz_test.dir/sync_fuzz_test.cc.o"
  "CMakeFiles/sync_fuzz_test.dir/sync_fuzz_test.cc.o.d"
  "sync_fuzz_test"
  "sync_fuzz_test.pdb"
  "sync_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
