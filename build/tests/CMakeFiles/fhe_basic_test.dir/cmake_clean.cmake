file(REMOVE_RECURSE
  "CMakeFiles/fhe_basic_test.dir/fhe_basic_test.cc.o"
  "CMakeFiles/fhe_basic_test.dir/fhe_basic_test.cc.o.d"
  "fhe_basic_test"
  "fhe_basic_test.pdb"
  "fhe_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
