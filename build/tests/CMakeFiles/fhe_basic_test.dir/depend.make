# Empty dependencies file for fhe_basic_test.
# This may be replaced when dependencies are built.
