# Empty dependencies file for sched_fused_test.
# This may be replaced when dependencies are built.
