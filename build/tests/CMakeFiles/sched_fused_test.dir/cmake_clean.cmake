file(REMOVE_RECURSE
  "CMakeFiles/sched_fused_test.dir/sched_fused_test.cc.o"
  "CMakeFiles/sched_fused_test.dir/sched_fused_test.cc.o.d"
  "sched_fused_test"
  "sched_fused_test.pdb"
  "sched_fused_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_fused_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
