# Empty dependencies file for sched_runner_test.
# This may be replaced when dependencies are built.
