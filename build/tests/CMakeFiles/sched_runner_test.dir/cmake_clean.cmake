file(REMOVE_RECURSE
  "CMakeFiles/sched_runner_test.dir/sched_runner_test.cc.o"
  "CMakeFiles/sched_runner_test.dir/sched_runner_test.cc.o.d"
  "sched_runner_test"
  "sched_runner_test.pdb"
  "sched_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
