file(REMOVE_RECURSE
  "CMakeFiles/integration_trace_test.dir/integration_trace_test.cc.o"
  "CMakeFiles/integration_trace_test.dir/integration_trace_test.cc.o.d"
  "integration_trace_test"
  "integration_trace_test.pdb"
  "integration_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
