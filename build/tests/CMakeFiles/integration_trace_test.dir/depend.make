# Empty dependencies file for integration_trace_test.
# This may be replaced when dependencies are built.
