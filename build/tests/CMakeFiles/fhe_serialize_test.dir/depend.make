# Empty dependencies file for fhe_serialize_test.
# This may be replaced when dependencies are built.
