file(REMOVE_RECURSE
  "CMakeFiles/fhe_serialize_test.dir/fhe_serialize_test.cc.o"
  "CMakeFiles/fhe_serialize_test.dir/fhe_serialize_test.cc.o.d"
  "fhe_serialize_test"
  "fhe_serialize_test.pdb"
  "fhe_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
