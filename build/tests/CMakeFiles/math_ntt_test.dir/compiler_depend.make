# Empty compiler generated dependencies file for math_ntt_test.
# This may be replaced when dependencies are built.
