file(REMOVE_RECURSE
  "CMakeFiles/math_ntt_test.dir/math_ntt_test.cc.o"
  "CMakeFiles/math_ntt_test.dir/math_ntt_test.cc.o.d"
  "math_ntt_test"
  "math_ntt_test.pdb"
  "math_ntt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_ntt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
