# Empty compiler generated dependencies file for math_rns_test.
# This may be replaced when dependencies are built.
