file(REMOVE_RECURSE
  "CMakeFiles/math_rns_test.dir/math_rns_test.cc.o"
  "CMakeFiles/math_rns_test.dir/math_rns_test.cc.o.d"
  "math_rns_test"
  "math_rns_test.pdb"
  "math_rns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_rns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
