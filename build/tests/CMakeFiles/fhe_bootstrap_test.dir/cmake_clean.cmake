file(REMOVE_RECURSE
  "CMakeFiles/fhe_bootstrap_test.dir/fhe_bootstrap_test.cc.o"
  "CMakeFiles/fhe_bootstrap_test.dir/fhe_bootstrap_test.cc.o.d"
  "fhe_bootstrap_test"
  "fhe_bootstrap_test.pdb"
  "fhe_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
