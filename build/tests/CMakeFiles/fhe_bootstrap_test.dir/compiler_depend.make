# Empty compiler generated dependencies file for fhe_bootstrap_test.
# This may be replaced when dependencies are built.
