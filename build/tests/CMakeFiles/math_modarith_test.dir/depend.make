# Empty dependencies file for math_modarith_test.
# This may be replaced when dependencies are built.
