file(REMOVE_RECURSE
  "CMakeFiles/math_modarith_test.dir/math_modarith_test.cc.o"
  "CMakeFiles/math_modarith_test.dir/math_modarith_test.cc.o.d"
  "math_modarith_test"
  "math_modarith_test.pdb"
  "math_modarith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_modarith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
