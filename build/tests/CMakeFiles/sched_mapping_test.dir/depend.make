# Empty dependencies file for sched_mapping_test.
# This may be replaced when dependencies are built.
