file(REMOVE_RECURSE
  "CMakeFiles/sched_mapping_test.dir/sched_mapping_test.cc.o"
  "CMakeFiles/sched_mapping_test.dir/sched_mapping_test.cc.o.d"
  "sched_mapping_test"
  "sched_mapping_test.pdb"
  "sched_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
