file(REMOVE_RECURSE
  "CMakeFiles/model_dft_test.dir/model_dft_test.cc.o"
  "CMakeFiles/model_dft_test.dir/model_dft_test.cc.o.d"
  "model_dft_test"
  "model_dft_test.pdb"
  "model_dft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_dft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
