# Empty compiler generated dependencies file for model_dft_test.
# This may be replaced when dependencies are built.
