# Empty compiler generated dependencies file for sim_eventq_test.
# This may be replaced when dependencies are built.
