file(REMOVE_RECURSE
  "CMakeFiles/sim_eventq_test.dir/sim_eventq_test.cc.o"
  "CMakeFiles/sim_eventq_test.dir/sim_eventq_test.cc.o.d"
  "sim_eventq_test"
  "sim_eventq_test.pdb"
  "sim_eventq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_eventq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
