file(REMOVE_RECURSE
  "CMakeFiles/arch_opcost_test.dir/arch_opcost_test.cc.o"
  "CMakeFiles/arch_opcost_test.dir/arch_opcost_test.cc.o.d"
  "arch_opcost_test"
  "arch_opcost_test.pdb"
  "arch_opcost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_opcost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
