# Empty compiler generated dependencies file for arch_opcost_test.
# This may be replaced when dependencies are built.
