# Empty compiler generated dependencies file for fhe_convolution_test.
# This may be replaced when dependencies are built.
