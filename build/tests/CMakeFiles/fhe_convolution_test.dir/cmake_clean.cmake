file(REMOVE_RECURSE
  "CMakeFiles/fhe_convolution_test.dir/fhe_convolution_test.cc.o"
  "CMakeFiles/fhe_convolution_test.dir/fhe_convolution_test.cc.o.d"
  "fhe_convolution_test"
  "fhe_convolution_test.pdb"
  "fhe_convolution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_convolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
