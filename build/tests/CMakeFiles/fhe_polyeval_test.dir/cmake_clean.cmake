file(REMOVE_RECURSE
  "CMakeFiles/fhe_polyeval_test.dir/fhe_polyeval_test.cc.o"
  "CMakeFiles/fhe_polyeval_test.dir/fhe_polyeval_test.cc.o.d"
  "fhe_polyeval_test"
  "fhe_polyeval_test.pdb"
  "fhe_polyeval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhe_polyeval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
