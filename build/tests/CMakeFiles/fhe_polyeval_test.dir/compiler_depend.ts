# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fhe_polyeval_test.
