# Empty dependencies file for fhe_polyeval_test.
# This may be replaced when dependencies are built.
