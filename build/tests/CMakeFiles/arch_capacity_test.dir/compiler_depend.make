# Empty compiler generated dependencies file for arch_capacity_test.
# This may be replaced when dependencies are built.
