file(REMOVE_RECURSE
  "CMakeFiles/arch_capacity_test.dir/arch_capacity_test.cc.o"
  "CMakeFiles/arch_capacity_test.dir/arch_capacity_test.cc.o.d"
  "arch_capacity_test"
  "arch_capacity_test.pdb"
  "arch_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
