# Empty dependencies file for sync_executor_test.
# This may be replaced when dependencies are built.
