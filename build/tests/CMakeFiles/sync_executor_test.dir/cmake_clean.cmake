file(REMOVE_RECURSE
  "CMakeFiles/sync_executor_test.dir/sync_executor_test.cc.o"
  "CMakeFiles/sync_executor_test.dir/sync_executor_test.cc.o.d"
  "sync_executor_test"
  "sync_executor_test.pdb"
  "sync_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
