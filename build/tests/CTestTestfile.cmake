# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/math_modarith_test[1]_include.cmake")
include("/root/repo/build/tests/math_ntt_test[1]_include.cmake")
include("/root/repo/build/tests/math_rns_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_encoder_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_basic_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_lintrans_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_polyeval_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/sim_eventq_test[1]_include.cmake")
include("/root/repo/build/tests/arch_opcost_test[1]_include.cmake")
include("/root/repo/build/tests/sync_executor_test[1]_include.cmake")
include("/root/repo/build/tests/model_dft_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sched_mapping_test[1]_include.cmake")
include("/root/repo/build/tests/sched_runner_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_convolution_test[1]_include.cmake")
include("/root/repo/build/tests/sync_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/arch_capacity_test[1]_include.cmake")
include("/root/repo/build/tests/sched_fused_test[1]_include.cmake")
include("/root/repo/build/tests/integration_trace_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_hoisting_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_matmul_test[1]_include.cmake")
include("/root/repo/build/tests/fhe_serialize_test[1]_include.cmake")
