# Empty dependencies file for hydra_sched.
# This may be replaced when dependencies are built.
