file(REMOVE_RECURSE
  "libhydra_sched.a"
)
