file(REMOVE_RECURSE
  "CMakeFiles/hydra_sched.dir/mapping.cc.o"
  "CMakeFiles/hydra_sched.dir/mapping.cc.o.d"
  "CMakeFiles/hydra_sched.dir/runner.cc.o"
  "CMakeFiles/hydra_sched.dir/runner.cc.o.d"
  "libhydra_sched.a"
  "libhydra_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
