file(REMOVE_RECURSE
  "CMakeFiles/hydra_common.dir/logging.cc.o"
  "CMakeFiles/hydra_common.dir/logging.cc.o.d"
  "CMakeFiles/hydra_common.dir/table.cc.o"
  "CMakeFiles/hydra_common.dir/table.cc.o.d"
  "libhydra_common.a"
  "libhydra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
