# Empty dependencies file for hydra_common.
# This may be replaced when dependencies are built.
