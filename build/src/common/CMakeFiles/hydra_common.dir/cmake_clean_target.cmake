file(REMOVE_RECURSE
  "libhydra_common.a"
)
