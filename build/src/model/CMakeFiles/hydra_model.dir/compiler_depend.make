# Empty compiler generated dependencies file for hydra_model.
# This may be replaced when dependencies are built.
