file(REMOVE_RECURSE
  "libhydra_model.a"
)
