file(REMOVE_RECURSE
  "CMakeFiles/hydra_model.dir/dft_model.cc.o"
  "CMakeFiles/hydra_model.dir/dft_model.cc.o.d"
  "libhydra_model.a"
  "libhydra_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
