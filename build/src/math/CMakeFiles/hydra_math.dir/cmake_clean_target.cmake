file(REMOVE_RECURSE
  "libhydra_math.a"
)
