
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bigint.cc" "src/math/CMakeFiles/hydra_math.dir/bigint.cc.o" "gcc" "src/math/CMakeFiles/hydra_math.dir/bigint.cc.o.d"
  "/root/repo/src/math/ntt.cc" "src/math/CMakeFiles/hydra_math.dir/ntt.cc.o" "gcc" "src/math/CMakeFiles/hydra_math.dir/ntt.cc.o.d"
  "/root/repo/src/math/poly.cc" "src/math/CMakeFiles/hydra_math.dir/poly.cc.o" "gcc" "src/math/CMakeFiles/hydra_math.dir/poly.cc.o.d"
  "/root/repo/src/math/primes.cc" "src/math/CMakeFiles/hydra_math.dir/primes.cc.o" "gcc" "src/math/CMakeFiles/hydra_math.dir/primes.cc.o.d"
  "/root/repo/src/math/rns.cc" "src/math/CMakeFiles/hydra_math.dir/rns.cc.o" "gcc" "src/math/CMakeFiles/hydra_math.dir/rns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
