# Empty compiler generated dependencies file for hydra_math.
# This may be replaced when dependencies are built.
