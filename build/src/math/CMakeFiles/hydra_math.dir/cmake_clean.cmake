file(REMOVE_RECURSE
  "CMakeFiles/hydra_math.dir/bigint.cc.o"
  "CMakeFiles/hydra_math.dir/bigint.cc.o.d"
  "CMakeFiles/hydra_math.dir/ntt.cc.o"
  "CMakeFiles/hydra_math.dir/ntt.cc.o.d"
  "CMakeFiles/hydra_math.dir/poly.cc.o"
  "CMakeFiles/hydra_math.dir/poly.cc.o.d"
  "CMakeFiles/hydra_math.dir/primes.cc.o"
  "CMakeFiles/hydra_math.dir/primes.cc.o.d"
  "CMakeFiles/hydra_math.dir/rns.cc.o"
  "CMakeFiles/hydra_math.dir/rns.cc.o.d"
  "libhydra_math.a"
  "libhydra_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
