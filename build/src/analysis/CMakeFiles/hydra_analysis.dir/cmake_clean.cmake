file(REMOVE_RECURSE
  "CMakeFiles/hydra_analysis.dir/energy.cc.o"
  "CMakeFiles/hydra_analysis.dir/energy.cc.o.d"
  "CMakeFiles/hydra_analysis.dir/resources.cc.o"
  "CMakeFiles/hydra_analysis.dir/resources.cc.o.d"
  "libhydra_analysis.a"
  "libhydra_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
