# Empty dependencies file for hydra_analysis.
# This may be replaced when dependencies are built.
