file(REMOVE_RECURSE
  "libhydra_analysis.a"
)
