file(REMOVE_RECURSE
  "CMakeFiles/hydra_baselines.dir/prototypes.cc.o"
  "CMakeFiles/hydra_baselines.dir/prototypes.cc.o.d"
  "libhydra_baselines.a"
  "libhydra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
