# Empty dependencies file for hydra_baselines.
# This may be replaced when dependencies are built.
