file(REMOVE_RECURSE
  "libhydra_baselines.a"
)
