file(REMOVE_RECURSE
  "libhydra_sim.a"
)
