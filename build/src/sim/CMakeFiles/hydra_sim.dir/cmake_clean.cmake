file(REMOVE_RECURSE
  "CMakeFiles/hydra_sim.dir/eventq.cc.o"
  "CMakeFiles/hydra_sim.dir/eventq.cc.o.d"
  "libhydra_sim.a"
  "libhydra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
