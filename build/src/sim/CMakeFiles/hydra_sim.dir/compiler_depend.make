# Empty compiler generated dependencies file for hydra_sim.
# This may be replaced when dependencies are built.
