file(REMOVE_RECURSE
  "libhydra_workloads.a"
)
