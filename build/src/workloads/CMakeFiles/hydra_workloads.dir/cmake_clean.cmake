file(REMOVE_RECURSE
  "CMakeFiles/hydra_workloads.dir/model.cc.o"
  "CMakeFiles/hydra_workloads.dir/model.cc.o.d"
  "libhydra_workloads.a"
  "libhydra_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
