# Empty compiler generated dependencies file for hydra_workloads.
# This may be replaced when dependencies are built.
