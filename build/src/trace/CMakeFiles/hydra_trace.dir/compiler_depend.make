# Empty compiler generated dependencies file for hydra_trace.
# This may be replaced when dependencies are built.
