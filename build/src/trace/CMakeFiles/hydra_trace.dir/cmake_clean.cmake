file(REMOVE_RECURSE
  "CMakeFiles/hydra_trace.dir/heop.cc.o"
  "CMakeFiles/hydra_trace.dir/heop.cc.o.d"
  "libhydra_trace.a"
  "libhydra_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
