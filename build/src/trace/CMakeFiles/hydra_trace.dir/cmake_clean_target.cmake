file(REMOVE_RECURSE
  "libhydra_trace.a"
)
