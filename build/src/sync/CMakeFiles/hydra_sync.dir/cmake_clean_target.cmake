file(REMOVE_RECURSE
  "libhydra_sync.a"
)
