# Empty dependencies file for hydra_sync.
# This may be replaced when dependencies are built.
