file(REMOVE_RECURSE
  "CMakeFiles/hydra_sync.dir/executor.cc.o"
  "CMakeFiles/hydra_sync.dir/executor.cc.o.d"
  "CMakeFiles/hydra_sync.dir/task.cc.o"
  "CMakeFiles/hydra_sync.dir/task.cc.o.d"
  "libhydra_sync.a"
  "libhydra_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
