# Empty dependencies file for hydra_arch.
# This may be replaced when dependencies are built.
