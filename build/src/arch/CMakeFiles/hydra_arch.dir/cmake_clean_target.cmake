file(REMOVE_RECURSE
  "libhydra_arch.a"
)
