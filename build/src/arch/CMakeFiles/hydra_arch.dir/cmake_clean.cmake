file(REMOVE_RECURSE
  "CMakeFiles/hydra_arch.dir/network.cc.o"
  "CMakeFiles/hydra_arch.dir/network.cc.o.d"
  "CMakeFiles/hydra_arch.dir/opcost.cc.o"
  "CMakeFiles/hydra_arch.dir/opcost.cc.o.d"
  "libhydra_arch.a"
  "libhydra_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
