file(REMOVE_RECURSE
  "CMakeFiles/hydra_fhe.dir/bootstrap.cc.o"
  "CMakeFiles/hydra_fhe.dir/bootstrap.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/chebyshev.cc.o"
  "CMakeFiles/hydra_fhe.dir/chebyshev.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/context.cc.o"
  "CMakeFiles/hydra_fhe.dir/context.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/convolution.cc.o"
  "CMakeFiles/hydra_fhe.dir/convolution.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/encoder.cc.o"
  "CMakeFiles/hydra_fhe.dir/encoder.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/encryptor.cc.o"
  "CMakeFiles/hydra_fhe.dir/encryptor.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/evaluator.cc.o"
  "CMakeFiles/hydra_fhe.dir/evaluator.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/keygen.cc.o"
  "CMakeFiles/hydra_fhe.dir/keygen.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/lintrans.cc.o"
  "CMakeFiles/hydra_fhe.dir/lintrans.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/matmul.cc.o"
  "CMakeFiles/hydra_fhe.dir/matmul.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/params.cc.o"
  "CMakeFiles/hydra_fhe.dir/params.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/polyeval.cc.o"
  "CMakeFiles/hydra_fhe.dir/polyeval.cc.o.d"
  "CMakeFiles/hydra_fhe.dir/serialize.cc.o"
  "CMakeFiles/hydra_fhe.dir/serialize.cc.o.d"
  "libhydra_fhe.a"
  "libhydra_fhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_fhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
