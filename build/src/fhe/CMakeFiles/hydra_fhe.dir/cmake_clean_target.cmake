file(REMOVE_RECURSE
  "libhydra_fhe.a"
)
