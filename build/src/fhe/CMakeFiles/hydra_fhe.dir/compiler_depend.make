# Empty compiler generated dependencies file for hydra_fhe.
# This may be replaced when dependencies are built.
