
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fhe/bootstrap.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/bootstrap.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/bootstrap.cc.o.d"
  "/root/repo/src/fhe/chebyshev.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/chebyshev.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/chebyshev.cc.o.d"
  "/root/repo/src/fhe/context.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/context.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/context.cc.o.d"
  "/root/repo/src/fhe/convolution.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/convolution.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/convolution.cc.o.d"
  "/root/repo/src/fhe/encoder.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/encoder.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/encoder.cc.o.d"
  "/root/repo/src/fhe/encryptor.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/encryptor.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/encryptor.cc.o.d"
  "/root/repo/src/fhe/evaluator.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/evaluator.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/evaluator.cc.o.d"
  "/root/repo/src/fhe/keygen.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/keygen.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/keygen.cc.o.d"
  "/root/repo/src/fhe/lintrans.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/lintrans.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/lintrans.cc.o.d"
  "/root/repo/src/fhe/matmul.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/matmul.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/matmul.cc.o.d"
  "/root/repo/src/fhe/params.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/params.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/params.cc.o.d"
  "/root/repo/src/fhe/polyeval.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/polyeval.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/polyeval.cc.o.d"
  "/root/repo/src/fhe/serialize.cc" "src/fhe/CMakeFiles/hydra_fhe.dir/serialize.cc.o" "gcc" "src/fhe/CMakeFiles/hydra_fhe.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/hydra_math.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hydra_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
