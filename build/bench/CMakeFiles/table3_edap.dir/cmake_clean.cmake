file(REMOVE_RECURSE
  "CMakeFiles/table3_edap.dir/table3_edap.cc.o"
  "CMakeFiles/table3_edap.dir/table3_edap.cc.o.d"
  "table3_edap"
  "table3_edap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_edap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
