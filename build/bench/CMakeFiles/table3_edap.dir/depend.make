# Empty dependencies file for table3_edap.
# This may be replaced when dependencies are built.
