file(REMOVE_RECURSE
  "CMakeFiles/ablation_architecture.dir/ablation_architecture.cc.o"
  "CMakeFiles/ablation_architecture.dir/ablation_architecture.cc.o.d"
  "ablation_architecture"
  "ablation_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
