# Empty compiler generated dependencies file for ablation_architecture.
# This may be replaced when dependencies are built.
