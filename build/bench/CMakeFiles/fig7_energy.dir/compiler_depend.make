# Empty compiler generated dependencies file for fig7_energy.
# This may be replaced when dependencies are built.
