file(REMOVE_RECURSE
  "CMakeFiles/fig7_energy.dir/fig7_energy.cc.o"
  "CMakeFiles/fig7_energy.dir/fig7_energy.cc.o.d"
  "fig7_energy"
  "fig7_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
