
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_energy.cc" "bench/CMakeFiles/fig7_energy.dir/fig7_energy.cc.o" "gcc" "bench/CMakeFiles/fig7_energy.dir/fig7_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/hydra_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hydra_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hydra_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hydra_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hydra_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/hydra_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hydra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hydra_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
