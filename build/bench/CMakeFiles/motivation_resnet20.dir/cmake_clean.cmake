file(REMOVE_RECURSE
  "CMakeFiles/motivation_resnet20.dir/motivation_resnet20.cc.o"
  "CMakeFiles/motivation_resnet20.dir/motivation_resnet20.cc.o.d"
  "motivation_resnet20"
  "motivation_resnet20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_resnet20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
