# Empty compiler generated dependencies file for motivation_resnet20.
# This may be replaced when dependencies are built.
