# Empty dependencies file for table4_resources.
# This may be replaced when dependencies are built.
