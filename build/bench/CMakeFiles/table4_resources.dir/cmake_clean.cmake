file(REMOVE_RECURSE
  "CMakeFiles/table4_resources.dir/table4_resources.cc.o"
  "CMakeFiles/table4_resources.dir/table4_resources.cc.o.d"
  "table4_resources"
  "table4_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
