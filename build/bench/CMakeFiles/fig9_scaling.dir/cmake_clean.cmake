file(REMOVE_RECURSE
  "CMakeFiles/fig9_scaling.dir/fig9_scaling.cc.o"
  "CMakeFiles/fig9_scaling.dir/fig9_scaling.cc.o.d"
  "fig9_scaling"
  "fig9_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
