# Empty compiler generated dependencies file for fig9_scaling.
# This may be replaced when dependencies are built.
