file(REMOVE_RECURSE
  "CMakeFiles/fig6_procedures.dir/fig6_procedures.cc.o"
  "CMakeFiles/fig6_procedures.dir/fig6_procedures.cc.o.d"
  "fig6_procedures"
  "fig6_procedures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_procedures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
