# Empty dependencies file for fig6_procedures.
# This may be replaced when dependencies are built.
