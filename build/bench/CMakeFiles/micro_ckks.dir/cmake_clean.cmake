file(REMOVE_RECURSE
  "CMakeFiles/micro_ckks.dir/micro_ckks.cc.o"
  "CMakeFiles/micro_ckks.dir/micro_ckks.cc.o.d"
  "micro_ckks"
  "micro_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
