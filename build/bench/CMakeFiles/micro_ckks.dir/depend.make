# Empty dependencies file for micro_ckks.
# This may be replaced when dependencies are built.
