# Empty dependencies file for table5_dft_params.
# This may be replaced when dependencies are built.
