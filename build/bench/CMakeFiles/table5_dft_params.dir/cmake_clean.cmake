file(REMOVE_RECURSE
  "CMakeFiles/table5_dft_params.dir/table5_dft_params.cc.o"
  "CMakeFiles/table5_dft_params.dir/table5_dft_params.cc.o.d"
  "table5_dft_params"
  "table5_dft_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dft_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
