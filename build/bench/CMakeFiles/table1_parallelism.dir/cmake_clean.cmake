file(REMOVE_RECURSE
  "CMakeFiles/table1_parallelism.dir/table1_parallelism.cc.o"
  "CMakeFiles/table1_parallelism.dir/table1_parallelism.cc.o.d"
  "table1_parallelism"
  "table1_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
