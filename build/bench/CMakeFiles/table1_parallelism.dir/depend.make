# Empty dependencies file for table1_parallelism.
# This may be replaced when dependencies are built.
