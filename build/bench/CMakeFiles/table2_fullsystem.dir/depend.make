# Empty dependencies file for table2_fullsystem.
# This may be replaced when dependencies are built.
