file(REMOVE_RECURSE
  "CMakeFiles/table2_fullsystem.dir/table2_fullsystem.cc.o"
  "CMakeFiles/table2_fullsystem.dir/table2_fullsystem.cc.o.d"
  "table2_fullsystem"
  "table2_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
