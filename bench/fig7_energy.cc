/**
 * @file
 * Reproduces paper Fig. 7: full-system energy consumption and its
 * breakdown (NTT/MM/MA/AUT compute units, HBM, DTU/NIC) for the three
 * Hydra prototypes on the four benchmarks.
 */

#include "analysis/energy.hh"
#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock("Fig. 7: energy consumption and breakdown");

    std::vector<PrototypeSpec> specs;
    specs.push_back(hydraSSpec());
    specs.push_back(hydraMSpec());
    specs.push_back(hydraLSpec());

    EnergyParams ep; // FPGA coefficients

    for (const auto& wl : allBenchmarks()) {
        TextTable t("\n" + wl.name + " (dynamic energy shares)");
        t.header({"Prototype", "total (kJ)", "NTT", "MM", "MA", "AUT",
                  "HBM", "NIC"});
        for (const auto& spec : specs) {
            InferenceRunner runner(spec);
            InferenceResult res = runner.run(wl);
            EnergyBreakdown e = computeEnergy(
                res.total, ep, spec.fpga, spec.cluster.totalCards());
            auto share = [&](double j) {
                return fmtPct(e.dynamicShare(j), 1);
            };
            t.addRow({spec.name, fmtF(e.total() / 1e3, 2),
                      share(e.cuJ[0]), share(e.cuJ[1]), share(e.cuJ[2]),
                      share(e.cuJ[3]), share(e.hbmJ), share(e.nicJ)});
        }
        t.print();
    }

    std::printf("\nPaper shapes: memory (HBM) takes the largest share on\n"
                "every benchmark; NTT and MM dominate among CUs; MA is\n"
                "minimal; DTU/NIC stays below 1%% even on Hydra-L.\n");
    return 0;
}
