/**
 * @file
 * Shared helpers for the table/figure reproduction benches, plus the
 * machine-readable JSON harness used by the google-benchmark micro
 * benches (micro_ckks / micro_ops / micro_parallel).
 *
 * Every micro bench accepts `--json <path>` (in addition to the usual
 * google-benchmark flags) and then appends one record per benchmark
 * case to `path`:
 *
 *   {"bench": "...", "case": "...", "wall_us": ..., "allocs": ...,
 *    "pool_hits": ..., "simd_level": "...", "repetitions": ...}
 *
 * wall_us is per-iteration wall time; allocs / pool_hits are
 * per-iteration BufferPool miss / hit counts captured by wrapping the
 * measurement loop in a PoolCounterScope.  simd_level records the
 * kernel dispatch level the run executed with (scalar/avx2/avx512) so
 * snapshots from different levels are never compared blind.  Any
 * further counter a bench sets in state.counters (e.g. the serving
 * bench's throughput_rps and latency percentiles) is passed through as
 * an extra field of the same name.  BENCH_micro.json /
 * BENCH_serving.json at the repo root are the checked-in snapshots
 * tracking the perf trajectory across PRs.
 *
 * `--min-of <N>` runs the whole suite N times and keeps, per case, the
 * record with the smallest wall_us (repetitions = N in the output).
 * Minimum-of-N is the standard estimator for run-to-run noise that is
 * strictly additive -- scheduler preemption, frequency ramps, pool
 * warm-up -- which is exactly what the thread-count sweeps in
 * micro_parallel are exposed to.
 */

#ifndef HYDRA_BENCH_BENCH_UTIL_HH
#define HYDRA_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "baselines/prototypes.hh"
#include "common/cpu.hh"
#include "common/pool.hh"
#include "common/table.hh"
#include "math/simd/simd.hh"
#include "sched/runner.hh"
#include "workloads/model.hh"

namespace hydra::bench {

/** Run one machine over the four benchmarks; returns seconds per. */
inline std::vector<double>
runAllBenchmarks(const PrototypeSpec& spec)
{
    InferenceRunner runner(spec);
    std::vector<double> out;
    for (const auto& wl : allBenchmarks())
        out.push_back(runner.run(wl).seconds());
    return out;
}

inline void
printHeaderBlock(const std::string& title)
{
    std::printf("\n================================================\n"
                "%s\n"
                "================================================\n",
                title.c_str());
}

/**
 * Attach per-iteration BufferPool counters to a benchmark case: declare
 * one inside the benchmark function, before the `for (auto _ : state)`
 * loop; on scope exit it stores the averaged miss ("allocs") and hit
 * ("pool_hits") counts into state.counters.
 */
class PoolCounterScope
{
  public:
    explicit PoolCounterScope(benchmark::State& state)
        : state_(state), before_(BufferPool::global().stats())
    {
    }

    ~PoolCounterScope()
    {
        BufferPool::Stats after = BufferPool::global().stats();
        double iters =
            static_cast<double>(state_.iterations() > 0
                                    ? state_.iterations()
                                    : 1);
        state_.counters["allocs"] = static_cast<double>(
            after.misses - before_.misses) / iters;
        state_.counters["pool_hits"] = static_cast<double>(
            after.hits - before_.hits) / iters;
    }

  private:
    benchmark::State& state_;
    BufferPool::Stats before_;
};

/**
 * Strip `--json <path>` / `--json=<path>` from argv before the
 * remaining flags reach google-benchmark.  Returns the path, or ""
 * when the flag is absent.
 */
inline std::string
extractJsonFlag(int& argc, char** argv)
{
    std::string path;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            argv[w++] = argv[i];
        }
    }
    argc = w;
    return path;
}

/**
 * Strip `--min-of <N>` / `--min-of=<N>` from argv.  Returns N, or 1
 * when the flag is absent or unparseable.
 */
inline int
extractMinOfFlag(int& argc, char** argv)
{
    long reps = 1;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-of") == 0 && i + 1 < argc) {
            reps = std::strtol(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--min-of=", 9) == 0) {
            reps = std::strtol(argv[i] + 9, nullptr, 10);
        } else {
            argv[w++] = argv[i];
        }
    }
    argc = w;
    return reps > 1 ? static_cast<int>(reps) : 1;
}

/**
 * Secondary reporter emitting one JSON record per benchmark case.  The
 * records accumulate in memory and are written as a JSON array when
 * the run finalizes.  Under --min-of, the suite reports into the same
 * instance several times and each case keeps the repetition with the
 * smallest wall_us; Finalize() then writes once, in first-seen order.
 */
class JsonLinesReporter : public benchmark::BenchmarkReporter
{
  public:
    JsonLinesReporter(std::string bench, std::string path,
                      int repetitions = 1)
        : bench_(std::move(bench)),
          path_(std::move(path)),
          repetitions_(repetitions)
    {
    }

    bool
    ReportContext(const Context&) override
    {
        return true;
    }

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred)
                continue;
            double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
            double wall_us =
                run.real_accumulated_time / iters * 1e6;
            double allocs = counterOr(run, "allocs", 0.0);
            double hits = counterOr(run, "pool_hits", 0.0);
            char line[512];
            std::snprintf(line, sizeof(line),
                          "{\"bench\": \"%s\", \"case\": \"%s\", "
                          "\"wall_us\": %.3f, \"allocs\": %.2f, "
                          "\"pool_hits\": %.2f, \"simd_level\": "
                          "\"%s\", \"repetitions\": %d",
                          bench_.c_str(), run.benchmark_name().c_str(),
                          wall_us, allocs, hits,
                          simdLevelName(simd::activeLevel()),
                          repetitions_);
            std::string record(line);
            // Every other user counter passes through by name, so
            // benches can export domain metrics (throughput, latency
            // percentiles) without touching the harness.
            for (const auto& [name, counter] : run.counters) {
                if (name == "allocs" || name == "pool_hits")
                    continue;
                std::snprintf(line, sizeof(line), ", \"%s\": %.3f",
                              name.c_str(),
                              static_cast<double>(counter.value));
                record += line;
            }
            record += "}";

            std::string key = run.benchmark_name();
            auto it = best_.find(key);
            if (it == best_.end()) {
                order_.push_back(key);
                best_.emplace(std::move(key),
                              Best{wall_us, std::move(record)});
            } else if (wall_us < it->second.wall_us) {
                it->second = Best{wall_us, std::move(record)};
            }
        }
    }

    void
    Finalize() override
    {
        std::ofstream out(path_);
        out << "[\n";
        for (size_t i = 0; i < order_.size(); ++i)
            out << best_.at(order_[i]).record
                << (i + 1 < order_.size() ? ",\n" : "\n");
        out << "]\n";
    }

  private:
    static double
    counterOr(const Run& run, const char* name, double fallback)
    {
        auto it = run.counters.find(name);
        return it != run.counters.end()
                   ? static_cast<double>(it->second.value)
                   : fallback;
    }

    struct Best
    {
        double wall_us;
        std::string record;
    };

    std::string bench_;
    std::string path_;
    int repetitions_;
    std::vector<std::string> order_;
    std::map<std::string, Best> best_;
};

/**
 * Display reporter that tees every run into a JsonLinesReporter while
 * keeping the normal console table.  Installed as the (single) display
 * reporter so no --benchmark_out flag is needed.
 */
class TeeJsonReporter : public benchmark::ConsoleReporter
{
  public:
    TeeJsonReporter(std::string bench, std::string path,
                    int repetitions = 1)
        : json_(std::move(bench), std::move(path), repetitions)
    {
    }

    bool
    ReportContext(const Context& context) override
    {
        json_.ReportContext(context);
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        json_.ReportRuns(runs);
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    void
    Finalize() override
    {
        json_.Finalize();
        benchmark::ConsoleReporter::Finalize();
    }

  private:
    JsonLinesReporter json_;
};

/**
 * main() for the micro benches: BENCHMARK_MAIN plus --json and
 * --min-of support.
 */
inline int
benchMain(const char* bench_name, int argc, char** argv)
{
    std::string json_path = extractJsonFlag(argc, argv);
    int reps = extractMinOfFlag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    if (json_path.empty()) {
        for (int r = 0; r < reps; ++r)
            benchmark::RunSpecifiedBenchmarks();
    } else {
        TeeJsonReporter tee(bench_name, json_path, reps);
        for (int r = 0; r < reps; ++r)
            benchmark::RunSpecifiedBenchmarks(&tee);
    }
    benchmark::Shutdown();
    return 0;
}

} // namespace hydra::bench

#define HYDRA_BENCH_MAIN(bench_name)                                    \
    int main(int argc, char** argv)                                     \
    {                                                                   \
        return hydra::bench::benchMain(bench_name, argc, argv);         \
    }

#endif // HYDRA_BENCH_BENCH_UTIL_HH
