/**
 * @file
 * Shared helpers for the table/figure reproduction benches, plus the
 * machine-readable JSON harness used by the google-benchmark micro
 * benches (micro_ckks / micro_ops / micro_parallel).
 *
 * Every micro bench accepts `--json <path>` (in addition to the usual
 * google-benchmark flags) and then appends one record per benchmark
 * case to `path`:
 *
 *   {"bench": "...", "case": "...", "wall_us": ..., "allocs": ...,
 *    "pool_hits": ...}
 *
 * wall_us is per-iteration wall time; allocs / pool_hits are
 * per-iteration BufferPool miss / hit counts captured by wrapping the
 * measurement loop in a PoolCounterScope.  Any further counter a bench
 * sets in state.counters (e.g. the serving bench's throughput_rps and
 * latency percentiles) is passed through as an extra field of the same
 * name.  BENCH_micro.json / BENCH_serving.json at the repo root are
 * the checked-in snapshots tracking the perf trajectory across PRs.
 */

#ifndef HYDRA_BENCH_BENCH_UTIL_HH
#define HYDRA_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/prototypes.hh"
#include "common/pool.hh"
#include "common/table.hh"
#include "sched/runner.hh"
#include "workloads/model.hh"

namespace hydra::bench {

/** Run one machine over the four benchmarks; returns seconds per. */
inline std::vector<double>
runAllBenchmarks(const PrototypeSpec& spec)
{
    InferenceRunner runner(spec);
    std::vector<double> out;
    for (const auto& wl : allBenchmarks())
        out.push_back(runner.run(wl).seconds());
    return out;
}

inline void
printHeaderBlock(const std::string& title)
{
    std::printf("\n================================================\n"
                "%s\n"
                "================================================\n",
                title.c_str());
}

/**
 * Attach per-iteration BufferPool counters to a benchmark case: declare
 * one inside the benchmark function, before the `for (auto _ : state)`
 * loop; on scope exit it stores the averaged miss ("allocs") and hit
 * ("pool_hits") counts into state.counters.
 */
class PoolCounterScope
{
  public:
    explicit PoolCounterScope(benchmark::State& state)
        : state_(state), before_(BufferPool::global().stats())
    {
    }

    ~PoolCounterScope()
    {
        BufferPool::Stats after = BufferPool::global().stats();
        double iters =
            static_cast<double>(state_.iterations() > 0
                                    ? state_.iterations()
                                    : 1);
        state_.counters["allocs"] = static_cast<double>(
            after.misses - before_.misses) / iters;
        state_.counters["pool_hits"] = static_cast<double>(
            after.hits - before_.hits) / iters;
    }

  private:
    benchmark::State& state_;
    BufferPool::Stats before_;
};

/**
 * Strip `--json <path>` / `--json=<path>` from argv before the
 * remaining flags reach google-benchmark.  Returns the path, or ""
 * when the flag is absent.
 */
inline std::string
extractJsonFlag(int& argc, char** argv)
{
    std::string path;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            argv[w++] = argv[i];
        }
    }
    argc = w;
    return path;
}

/**
 * Secondary reporter emitting one JSON record per benchmark case.  The
 * records accumulate in memory and are written as a JSON array when
 * the run finalizes.
 */
class JsonLinesReporter : public benchmark::BenchmarkReporter
{
  public:
    JsonLinesReporter(std::string bench, std::string path)
        : bench_(std::move(bench)), path_(std::move(path))
    {
    }

    bool
    ReportContext(const Context&) override
    {
        return true;
    }

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred)
                continue;
            double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
            double wall_us =
                run.real_accumulated_time / iters * 1e6;
            double allocs = counterOr(run, "allocs", 0.0);
            double hits = counterOr(run, "pool_hits", 0.0);
            char line[512];
            std::snprintf(line, sizeof(line),
                          "{\"bench\": \"%s\", \"case\": \"%s\", "
                          "\"wall_us\": %.3f, \"allocs\": %.2f, "
                          "\"pool_hits\": %.2f",
                          bench_.c_str(), run.benchmark_name().c_str(),
                          wall_us, allocs, hits);
            std::string record(line);
            // Every other user counter passes through by name, so
            // benches can export domain metrics (throughput, latency
            // percentiles) without touching the harness.
            for (const auto& [name, counter] : run.counters) {
                if (name == "allocs" || name == "pool_hits")
                    continue;
                std::snprintf(line, sizeof(line), ", \"%s\": %.3f",
                              name.c_str(),
                              static_cast<double>(counter.value));
                record += line;
            }
            record += "}";
            records_.push_back(std::move(record));
        }
    }

    void
    Finalize() override
    {
        std::ofstream out(path_);
        out << "[\n";
        for (size_t i = 0; i < records_.size(); ++i)
            out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
        out << "]\n";
    }

  private:
    static double
    counterOr(const Run& run, const char* name, double fallback)
    {
        auto it = run.counters.find(name);
        return it != run.counters.end()
                   ? static_cast<double>(it->second.value)
                   : fallback;
    }

    std::string bench_;
    std::string path_;
    std::vector<std::string> records_;
};

/**
 * Display reporter that tees every run into a JsonLinesReporter while
 * keeping the normal console table.  Installed as the (single) display
 * reporter so no --benchmark_out flag is needed.
 */
class TeeJsonReporter : public benchmark::ConsoleReporter
{
  public:
    TeeJsonReporter(std::string bench, std::string path)
        : json_(std::move(bench), std::move(path))
    {
    }

    bool
    ReportContext(const Context& context) override
    {
        json_.ReportContext(context);
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        json_.ReportRuns(runs);
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    void
    Finalize() override
    {
        json_.Finalize();
        benchmark::ConsoleReporter::Finalize();
    }

  private:
    JsonLinesReporter json_;
};

/** main() for the micro benches: BENCHMARK_MAIN plus --json support. */
inline int
benchMain(const char* bench_name, int argc, char** argv)
{
    std::string json_path = extractJsonFlag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    if (json_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        TeeJsonReporter tee(bench_name, json_path);
        benchmark::RunSpecifiedBenchmarks(&tee);
    }
    benchmark::Shutdown();
    return 0;
}

} // namespace hydra::bench

#define HYDRA_BENCH_MAIN(bench_name)                                    \
    int main(int argc, char** argv)                                     \
    {                                                                   \
        return hydra::bench::benchMain(bench_name, argc, argv);         \
    }

#endif // HYDRA_BENCH_BENCH_UTIL_HH
