/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef HYDRA_BENCH_BENCH_UTIL_HH
#define HYDRA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "baselines/prototypes.hh"
#include "common/table.hh"
#include "sched/runner.hh"
#include "workloads/model.hh"

namespace hydra::bench {

/** Run one machine over the four benchmarks; returns seconds per. */
inline std::vector<double>
runAllBenchmarks(const PrototypeSpec& spec)
{
    InferenceRunner runner(spec);
    std::vector<double> out;
    for (const auto& wl : allBenchmarks())
        out.push_back(runner.run(wl).seconds());
    return out;
}

inline void
printHeaderBlock(const std::string& title)
{
    std::printf("\n================================================\n"
                "%s\n"
                "================================================\n",
                title.c_str());
}

} // namespace hydra::bench

#endif // HYDRA_BENCH_BENCH_UTIL_HH
