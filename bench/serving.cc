/**
 * @file
 * Google-benchmark harness for the multi-tenant serving subsystem:
 * wall time of one whole ServeSim run (virtual seconds of serving
 * simulated per real second), with the serving-level SLO metrics
 * (throughput, p50/p95/p99 latency, shed count, mean utilization)
 * exported as counters — so `--json` snapshots track both simulator
 * speed and served quality across PRs.
 *
 * Cases:
 *   BM_ServeMixed/<machine>   mixed ResNet-20 + ResNet-18 open-loop
 *                             stream, ~1k completions so the latency
 *                             percentiles are a real distribution
 *   BM_ServeClosed            closed-loop client pool on Hydra-M
 *   BM_ServeBertSafe/Aggressive  the §16 compile-level A/B: the same
 *                             BERT-heavy cake mix served with Safe
 *                             per-step plans vs opt=aggressive
 *                             ExecPlans (fused, boot-elided units)
 *   BM_ServeFaulted           open-loop stream with a mid-stream card
 *                             kill (repartition + shed accounting)
 *   BM_ServeFederated         4-cluster federation losing one cluster
 *                             mid-run (health-gated routing, failover,
 *                             checkpointed recovery)
 *   BM_ServeSloFifo/Cake      the DESIGN.md §14 SLO acceptance A/B:
 *                             10k tenants, ~1M offered requests on a
 *                             4-cluster federation at >0.8 demand,
 *                             fifo admission vs the CAKE deficit
 *                             scheduler over the identical spec.
 *                             Minutes of wall time (fifo executes
 *                             every job for real) -- CI excludes them
 *                             with --benchmark_filter=-BM_ServeSlo
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "baselines/prototypes.hh"
#include "bench_util.hh"
#include "sched/progcache.hh"
#include "serve/sim.hh"

namespace hydra {
namespace {

/**
 * Earlier revisions of these specs offered so few requests (resnet18
 * at 0.05/s over 120 s is six arrivals) that p50 == p95 == p99; the
 * short-job class now carries the load so every case completes
 * hundreds of jobs and the percentiles describe a real queueing
 * distribution.
 */
const char* kMixedSpec =
    "seed=7,duration=600,"
    "group=resnet20:2,group=resnet20:2,group=resnet20:2,"
    "group=resnet18:2,"
    "tenant=vision:open:resnet20:1.8,tenant=nlp:open:resnet18:0.03";

/** Same shape scaled to Hydra-L's 64 cards (12 short groups + 2 long
 *  groups, ~10x the offered rate) so the L case stresses the machine
 *  instead of replaying the M layout on idle hardware. */
const char* kMixedSpecL =
    "seed=7,duration=600,"
    "group=resnet20:4,group=resnet20:4,group=resnet20:4,"
    "group=resnet20:4,group=resnet20:4,group=resnet20:4,"
    "group=resnet20:4,group=resnet20:4,group=resnet20:4,"
    "group=resnet20:4,group=resnet20:4,group=resnet20:4,"
    "group=resnet18:4,group=resnet18:4,"
    "tenant=vision:open:resnet20:9.5,tenant=nlp:open:resnet18:0.12";

/**
 * The SLO acceptance workload (mirrors scripts/gen_workload.py
 * defaults): 25 blocks of 400 closed-loop resnet20 tenants with
 * staggered think times, 8 long-job resnet18 tenants, on a 4-cluster
 * hydra-m federation whose long-job groups are under-provisioned.  At
 * duration=140000 the closed loops offer >= 1M requests under either
 * scheduler (fifo completes slower, so its loops re-arrive slower).
 */
std::string
sloSpec(const char* sched)
{
    std::string s = "sched=";
    s += sched;
    s += ",seed=11,clusters=4,duration=140000,queue=2048,"
         "requests=3000000";
    char tok[64];
    for (int i = 0; i < 25; ++i) {
        std::snprintf(tok, sizeof(tok),
                      ",tenants=400:sp%d:closed:resnet20:1:%d", i,
                      940 + 17 * i);
        s += tok;
    }
    s += ",tenants=8:lp:closed:resnet18:1:40";
    s += ",group=resnet20:2,group=resnet20:2,group=resnet18:4";
    return s;
}

void
exportStats(benchmark::State& state, const ServeStats& st)
{
    state.counters["throughput_rps"] = st.throughputRps();
    state.counters["completed"] = static_cast<double>(st.completed);
    state.counters["shed"] = static_cast<double>(st.shed);
    state.counters["p50_ms"] =
        ticksToSeconds(st.latency.percentile(0.50)) * 1e3;
    state.counters["p95_ms"] =
        ticksToSeconds(st.latency.percentile(0.95)) * 1e3;
    state.counters["p99_ms"] =
        ticksToSeconds(st.latency.percentile(0.99)) * 1e3;
    double busy = 0;
    for (const auto& g : st.groups)
        busy += g.utilization(st.horizon);
    state.counters["mean_util"] =
        st.groups.empty() ? 0.0 : busy / static_cast<double>(st.groups.size());
    state.counters["virtual_s"] = ticksToSeconds(st.horizon);
    // Federation fault accounting (all zero for single-cluster runs).
    state.counters["failovers"] = static_cast<double>(st.failovers);
    state.counters["spilled"] = static_cast<double>(st.spilled);
    state.counters["recovered_steps"] =
        static_cast<double>(st.recoveredSteps);
    state.counters["replayed_steps"] =
        static_cast<double>(st.replayedSteps);
    state.counters["health_transitions"] =
        static_cast<double>(st.healthTransitions);
    state.counters["canary_probes"] =
        static_cast<double>(st.canaryProbes);
    state.counters["offered"] = static_cast<double>(st.offered);
    state.counters["shed_rate"] =
        st.offered > 0 ? static_cast<double>(st.shed) /
                             static_cast<double>(st.offered)
                       : 0.0;
    // CAKE scheduler accounting (all zero under sched=fifo).
    state.counters["preemptions"] = static_cast<double>(st.preemptions);
    state.counters["steals"] = static_cast<double>(st.steals);
    state.counters["steals_cross"] =
        static_cast<double>(st.stealsCross);
    state.counters["demotions"] = static_cast<double>(st.demotions);
    state.counters["kicks"] = static_cast<double>(st.kicks);
    state.counters["max_wait_s"] = ticksToSeconds(st.maxWaitTicks);
    state.counters["job_cache_hits"] =
        static_cast<double>(st.jobCacheHits);
    state.counters["job_cache_misses"] =
        static_cast<double>(st.jobCacheMisses);
    // Per-run ProgramCache deltas (the serve_cluster --json "caches"
    // block); the cross-iteration reuse rate is computed in serveCase.
    state.counters["progcache_run_hits"] =
        static_cast<double>(st.progCacheHits);
    state.counters["progcache_run_misses"] =
        static_cast<double>(st.progCacheMisses);
    state.counters["progcache_evictions"] =
        static_cast<double>(st.progCacheEvictions);
    state.counters["progcache_entries"] =
        static_cast<double>(st.progCacheEntries);
}

void
serveCase(benchmark::State& state, const PrototypeSpec& spec,
          const std::string& serve_spec, const std::string& fault_spec)
{
    ServeSpec serve = ServeSpec::parse(serve_spec);
    FaultPlan faults = FaultPlan::parse(fault_spec);
    ServeStats last;
    ProgramCache::Stats before = ProgramCache::global().stats();
    for (auto _ : state) {
        ServeSim sim(spec, serve, faults);
        last = sim.run();
        benchmark::DoNotOptimize(last.completed);
    }
    // Steady-state program reuse: every job compiles through the
    // shared ProgramCache, so across iterations almost every step
    // lookup should hit.
    ProgramCache::Stats after = ProgramCache::global().stats();
    double hits = static_cast<double>(after.hits - before.hits);
    double misses = static_cast<double>(after.misses - before.misses);
    state.counters["progcache_hits"] = hits;
    state.counters["progcache_misses"] = misses;
    state.counters["progcache_hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    exportStats(state, last);
}

void
BM_ServeMixedM(benchmark::State& state)
{
    serveCase(state, hydraMSpec(), kMixedSpec, "");
}
BENCHMARK(BM_ServeMixedM)->Unit(benchmark::kMillisecond);

void
BM_ServeMixedL(benchmark::State& state)
{
    serveCase(state, hydraLSpec(), kMixedSpecL, "");
}
BENCHMARK(BM_ServeMixedL)->Unit(benchmark::kMillisecond);

void
BM_ServeClosed(benchmark::State& state)
{
    serveCase(state, hydraMSpec(),
              "seed=7,duration=600,"
              "group=resnet20:2,group=resnet20:2,group=resnet20:2,group=resnet18:2,"
              "tenant=vision:closed:resnet20:8:2,"
              "tenant=nlp:closed:resnet18:1:10",
              "");
}
BENCHMARK(BM_ServeClosed)->Unit(benchmark::kMillisecond);

void
BM_ServeSloFifo(benchmark::State& state)
{
    serveCase(state, hydraMSpec(), sloSpec("fifo"), "");
}
BENCHMARK(BM_ServeSloFifo)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
BM_ServeSloCake(benchmark::State& state)
{
    serveCase(state, hydraMSpec(), sloSpec("cake"), "");
}
BENCHMARK(BM_ServeSloCake)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/**
 * The compile-level A/B (DESIGN.md §16 acceptance): a BERT-heavy cake
 * mix — two under-provisioned bert groups under sustained closed-loop
 * pressure plus a trickle of open-loop arrivals — served once with the
 * default Safe per-step plans and once with `opt=aggressive` ExecPlans
 * (boot-elided, fused multi-layer units).  The aggressive leg must
 * show the shorter service times as lower p99 latency and a smaller
 * virtual makespan at identical offered traffic.
 */
const char* kBertHeavySpec =
    "seed=11,duration=4000,sched=cake,queue=256,"
    "group=bert:4,group=bert:4,"
    "tenant=nlp:closed:bert:1:60,tenant=burst:open:bert:0.012";

void
BM_ServeBertSafe(benchmark::State& state)
{
    serveCase(state, hydraMSpec(), kBertHeavySpec, "");
}
BENCHMARK(BM_ServeBertSafe)->Unit(benchmark::kMillisecond);

void
BM_ServeBertAggressive(benchmark::State& state)
{
    serveCase(state, hydraMSpec(),
              std::string("opt=aggressive,") + kBertHeavySpec, "");
}
BENCHMARK(BM_ServeBertAggressive)->Unit(benchmark::kMillisecond);

void
BM_ServeFaulted(benchmark::State& state)
{
    serveCase(state, hydraMSpec(),
              "seed=7,duration=600,"
              "group=resnet20:2,group=resnet20:2,group=resnet20:2,group=resnet18:2,"
              "tenant=vision:open:resnet20:1.8,"
              "tenant=nlp:open:resnet18:0.03",
              "kill=1@200");
}
BENCHMARK(BM_ServeFaulted)->Unit(benchmark::kMillisecond);

void
BM_ServeFederated(benchmark::State& state)
{
    // The PR 7 acceptance scenario: a 4-cluster federation under a
    // saturating closed-loop pool loses cluster 1 mid-run; survivors
    // absorb the spillover and the aborted jobs resume from their
    // checkpointed step boundaries.
    serveCase(state, hydraMSpec(),
              "seed=9,duration=40,clusters=4,group=resnet18:8,"
              "tenant=pool:closed:resnet18:8:0",
              "ckill=1@30");
}
BENCHMARK(BM_ServeFederated)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("serving")
