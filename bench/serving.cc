/**
 * @file
 * Google-benchmark harness for the multi-tenant serving subsystem:
 * wall time of one whole ServeSim run (virtual seconds of serving
 * simulated per real second), with the serving-level SLO metrics
 * (throughput, p50/p95/p99 latency, shed count, mean utilization)
 * exported as counters — so `--json` snapshots track both simulator
 * speed and served quality across PRs.
 *
 * Cases:
 *   BM_ServeMixed/<machine>   mixed ResNet-18 + BERT-base open-loop
 *                             stream (the acceptance workload)
 *   BM_ServeClosed            closed-loop client pool on Hydra-M
 *   BM_ServeFaulted           same stream with a mid-stream card kill
 *                             (repartition + shed accounting path)
 *   BM_ServeFederated         4-cluster federation losing one cluster
 *                             mid-run (health-gated routing, failover,
 *                             checkpointed recovery)
 */

#include <benchmark/benchmark.h>

#include "baselines/prototypes.hh"
#include "bench_util.hh"
#include "sched/progcache.hh"
#include "serve/sim.hh"

namespace hydra {
namespace {

const char* kMixedSpec =
    "seed=7,duration=120,tenant=vision:open:resnet18:0.05,"
    "tenant=nlp:open:bert:0.005";

void
exportStats(benchmark::State& state, const ServeStats& st)
{
    state.counters["throughput_rps"] = st.throughputRps();
    state.counters["completed"] = static_cast<double>(st.completed);
    state.counters["shed"] = static_cast<double>(st.shed);
    state.counters["p50_ms"] =
        ticksToSeconds(st.latency.percentile(0.50)) * 1e3;
    state.counters["p95_ms"] =
        ticksToSeconds(st.latency.percentile(0.95)) * 1e3;
    state.counters["p99_ms"] =
        ticksToSeconds(st.latency.percentile(0.99)) * 1e3;
    double busy = 0;
    for (const auto& g : st.groups)
        busy += g.utilization(st.horizon);
    state.counters["mean_util"] =
        st.groups.empty() ? 0.0 : busy / static_cast<double>(st.groups.size());
    state.counters["virtual_s"] = ticksToSeconds(st.horizon);
    // Federation fault accounting (all zero for single-cluster runs).
    state.counters["failovers"] = static_cast<double>(st.failovers);
    state.counters["spilled"] = static_cast<double>(st.spilled);
    state.counters["recovered_steps"] =
        static_cast<double>(st.recoveredSteps);
    state.counters["replayed_steps"] =
        static_cast<double>(st.replayedSteps);
    state.counters["health_transitions"] =
        static_cast<double>(st.healthTransitions);
    state.counters["canary_probes"] =
        static_cast<double>(st.canaryProbes);
}

void
serveCase(benchmark::State& state, const PrototypeSpec& spec,
          const std::string& serve_spec, const std::string& fault_spec)
{
    ServeSpec serve = ServeSpec::parse(serve_spec);
    FaultPlan faults = FaultPlan::parse(fault_spec);
    ServeStats last;
    ProgramCache::Stats before = ProgramCache::global().stats();
    for (auto _ : state) {
        ServeSim sim(spec, serve, faults);
        last = sim.run();
        benchmark::DoNotOptimize(last.completed);
    }
    // Steady-state program reuse: every job compiles through the
    // shared ProgramCache, so across iterations almost every step
    // lookup should hit.
    ProgramCache::Stats after = ProgramCache::global().stats();
    double hits = static_cast<double>(after.hits - before.hits);
    double misses = static_cast<double>(after.misses - before.misses);
    state.counters["progcache_hits"] = hits;
    state.counters["progcache_misses"] = misses;
    state.counters["progcache_hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    exportStats(state, last);
}

void
BM_ServeMixedM(benchmark::State& state)
{
    serveCase(state, hydraMSpec(), kMixedSpec, "");
}
BENCHMARK(BM_ServeMixedM)->Unit(benchmark::kMillisecond);

void
BM_ServeMixedL(benchmark::State& state)
{
    serveCase(state, hydraLSpec(), kMixedSpec, "");
}
BENCHMARK(BM_ServeMixedL)->Unit(benchmark::kMillisecond);

void
BM_ServeClosed(benchmark::State& state)
{
    serveCase(state, hydraMSpec(),
              "seed=7,duration=120,"
              "tenant=vision:closed:resnet18:3:1,"
              "tenant=nlp:closed:bert:1:5",
              "");
}
BENCHMARK(BM_ServeClosed)->Unit(benchmark::kMillisecond);

void
BM_ServeFaulted(benchmark::State& state)
{
    serveCase(state, hydraMSpec(),
              "seed=7,duration=120,"
              "tenant=vision:open:resnet18:0.05,"
              "tenant=nlp:open:bert:0.005,"
              "group=resnet18:4:2,group=bert:4:1",
              "kill=1@40");
}
BENCHMARK(BM_ServeFaulted)->Unit(benchmark::kMillisecond);

void
BM_ServeFederated(benchmark::State& state)
{
    // The PR 7 acceptance scenario: a 4-cluster federation under a
    // saturating closed-loop pool loses cluster 1 mid-run; survivors
    // absorb the spillover and the aborted jobs resume from their
    // checkpointed step boundaries.
    serveCase(state, hydraMSpec(),
              "seed=9,duration=40,clusters=4,group=resnet18:8,"
              "tenant=pool:closed:resnet18:8:0",
              "ckill=1@30");
}
BENCHMARK(BM_ServeFederated)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("serving")
