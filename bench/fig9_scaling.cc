/**
 * @file
 * Reproduces paper Fig. 9: (a)/(b) per-procedure speedup of ResNet-50
 * and OPT-6.7B as the card count sweeps 1..64, and (c) the share of
 * communication overhead per benchmark over the same sweep.
 */

#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

namespace {

PrototypeSpec
hydraWith(size_t cards)
{
    size_t servers = cards <= 8 ? 1 : cards / 8;
    size_t per = cards <= 8 ? cards : 8;
    return hydraPrototype("Hydra-" + std::to_string(cards), servers, per);
}

} // namespace

int
main()
{
    printHeaderBlock("Fig. 9: scalability analysis, 1..64 cards");

    const size_t card_counts[] = {1, 2, 4, 8, 16, 32, 64};

    // (a) ResNet-50 and (b) OPT-6.7B per-procedure speedups.
    struct Panel
    {
        WorkloadModel wl;
        std::vector<ProcKind> procs;
    };
    std::vector<Panel> panels;
    panels.push_back({makeResNet50(),
                      {ProcKind::ConvBN, ProcKind::NonLinear,
                       ProcKind::FC, ProcKind::Bootstrap}});
    panels.push_back({makeOpt67B(),
                      {ProcKind::PCMM, ProcKind::CCMM,
                       ProcKind::NonLinear, ProcKind::Bootstrap}});

    for (const auto& panel : panels) {
        std::vector<InferenceResult> results;
        for (size_t cards : card_counts) {
            PrototypeSpec spec = hydraWith(cards);
            InferenceRunner runner(spec);
            results.push_back(runner.run(panel.wl));
        }
        TextTable t("\n" + panel.wl.name +
                    ": speedup vs 1 card (per procedure)");
        std::vector<std::string> hdr = {"Cards"};
        for (ProcKind k : panel.procs)
            hdr.push_back(procName(k));
        hdr.push_back("Total");
        t.header(hdr);
        for (size_t i = 0; i < results.size(); ++i) {
            std::vector<std::string> row = {
                std::to_string(card_counts[i])};
            for (ProcKind k : panel.procs) {
                Tick base = results[0].procTime(k);
                Tick cur = results[i].procTime(k);
                row.push_back(cur ? fmtX(static_cast<double>(base) /
                                         static_cast<double>(cur))
                                  : "-");
            }
            row.push_back(fmtX(
                static_cast<double>(results[0].total.makespan) /
                static_cast<double>(results[i].total.makespan)));
            t.addRow(row);
        }
        t.print();
    }

    // (c) Communication share per benchmark over the sweep.
    TextTable c("\nCommunication share of total overhead");
    std::vector<std::string> hdr = {"Cards"};
    auto models = allBenchmarks();
    for (const auto& wl : models)
        hdr.push_back(wl.name);
    c.header(hdr);
    for (size_t cards : card_counts) {
        PrototypeSpec spec = hydraWith(cards);
        InferenceRunner runner(spec);
        std::vector<std::string> row = {std::to_string(cards)};
        for (const auto& wl : models)
            row.push_back(fmtPct(runner.run(wl).commFraction(), 2));
        c.addRow(row);
    }
    c.print();

    std::printf("\nPaper shapes: ConvBN scales faster than Boot on\n"
                "ResNet-50; OPT-6.7B procedures keep near-linear growth;\n"
                "ResNet-18's comm share grows fastest with node count,\n"
                "OPT-6.7B's slowest.\n");
    return 0;
}
