/**
 * @file
 * Google-benchmark microbenchmarks of the functional CKKS library:
 * NTT, encode/decode, and the ciphertext operation set at laptop-scale
 * ring dimensions (the paper's N = 2^16 is supported by the machinery;
 * benches default to 2^12/2^13 to keep run times sane).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "fhe/bootstrap.hh"
#include "fhe/encryptor.hh"
#include "fhe/keygen.hh"
#include "math/primes.hh"

namespace hydra {
namespace {

using bench::PoolCounterScope;

void
BM_NttForward(benchmark::State& state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Modulus q(nttPrimes(n, 50, 1)[0]);
    NttTable table(n, q);
    std::vector<u64> a(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = i * 2654435761u % q.value();
    for (auto _ : state) {
        table.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void
BM_NttForwardRadix4(benchmark::State& state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Modulus q(nttPrimes(n, 50, 1)[0]);
    NttTable table(n, q);
    std::vector<u64> a(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = i * 2654435761u % q.value();
    for (auto _ : state) {
        table.forwardRadix4(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForwardRadix4)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

struct CkksFixtureState
{
    CkksFixtureState()
        : ctx(params()),
          encoder(ctx),
          keygen(ctx),
          sk(keygen.secretKey()),
          pk(keygen.publicKey(sk)),
          relin(keygen.relinKey(sk)),
          galois(keygen.galoisKeys(sk, {1})),
          encryptor(ctx, pk),
          decryptor(ctx, sk),
          eval(ctx, encoder)
    {
        eval.setRelinKey(&relin);
        eval.setGaloisKeys(&galois);
        std::vector<double> v(ctx.slots(), 0.5);
        ct = encryptor.encrypt(
            encoder.encode(v, ctx.params().scale(), ctx.levels()));
    }

    static CkksParams
    params()
    {
        CkksParams p;
        p.n = 1 << 12;
        p.levels = 8;
        return p;
    }

    CkksContext ctx;
    CkksEncoder encoder;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    EvalKey relin;
    GaloisKeys galois;
    Encryptor encryptor;
    Decryptor decryptor;
    Evaluator eval;
    Ciphertext ct;
};

CkksFixtureState&
fixture()
{
    static CkksFixtureState f;
    return f;
}

void
BM_CkksEncode(benchmark::State& state)
{
    auto& f = fixture();
    std::vector<double> v(f.ctx.slots(), 0.25);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            f.encoder.encode(v, f.ctx.params().scale(), 2));
    }
}
BENCHMARK(BM_CkksEncode);

void
BM_CkksHAdd(benchmark::State& state)
{
    auto& f = fixture();
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.add(f.ct, f.ct));
}
BENCHMARK(BM_CkksHAdd);

void
BM_CkksPMult(benchmark::State& state)
{
    auto& f = fixture();
    std::vector<double> v(f.ctx.slots(), 0.5);
    Plaintext pt =
        f.encoder.encode(v, f.ctx.params().scale(), f.ctx.levels());
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.mulPlain(f.ct, pt));
}
BENCHMARK(BM_CkksPMult);

void
BM_CkksCMult(benchmark::State& state)
{
    auto& f = fixture();
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.mulRelin(f.ct, f.ct));
}
BENCHMARK(BM_CkksCMult);

void
BM_CkksRotate(benchmark::State& state)
{
    auto& f = fixture();
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.rotate(f.ct, 1));
}
BENCHMARK(BM_CkksRotate);

void
BM_CkksRescale(benchmark::State& state)
{
    auto& f = fixture();
    Ciphertext prod = f.eval.mulRelin(f.ct, f.ct);
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.rescale(prod));
}
BENCHMARK(BM_CkksRescale);

void
BM_CkksRotateHoisted8(benchmark::State& state)
{
    // Eight rotations sharing one digit decomposition vs eight naive
    // rotations (BM_CkksRotate x8): the hoisting win.
    auto& f = fixture();
    GaloisKeys keys = f.keygen.galoisKeys(
        f.sk, {1, 2, 3, 4, 5, 6, 7, 8}, false);
    f.eval.setGaloisKeys(&keys);
    std::vector<int> steps = {1, 2, 3, 4, 5, 6, 7, 8};
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.rotateHoisted(f.ct, steps));
    f.eval.setGaloisKeys(&f.galois);
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_CkksRotateHoisted8);

void
BM_CkksEncryptDecrypt(benchmark::State& state)
{
    auto& f = fixture();
    std::vector<double> v(f.ctx.slots(), 0.125);
    Plaintext pt =
        f.encoder.encode(v, f.ctx.params().scale(), f.ctx.levels());
    for (auto _ : state) {
        Ciphertext c = f.encryptor.encrypt(pt);
        benchmark::DoNotOptimize(f.decryptor.decrypt(c));
    }
}
BENCHMARK(BM_CkksEncryptDecrypt);

/** Full bootstrap at the small self-test parameter point. */
struct BootstrapFixtureState
{
    BootstrapFixtureState()
        : ctx(CkksParams::bootstrapTest()),
          encoder(ctx),
          keygen(ctx),
          sk(keygen.secretKey()),
          pk(keygen.publicKey(sk)),
          relin(keygen.relinKey(sk)),
          encryptor(ctx, pk),
          eval(ctx, encoder),
          boot(ctx, encoder),
          galois(keygen.galoisKeys(sk, boot.requiredRotations()))
    {
        eval.setRelinKey(&relin);
        eval.setGaloisKeys(&galois);
        std::vector<double> v(ctx.slots(), 0.01);
        ct = encryptor.encrypt(
            encoder.encode(v, ctx.params().scale(), 1));
    }

    CkksContext ctx;
    CkksEncoder encoder;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    EvalKey relin;
    Encryptor encryptor;
    Evaluator eval;
    Bootstrapper boot;
    GaloisKeys galois;
    Ciphertext ct;
};

BootstrapFixtureState&
bootstrapFixture()
{
    static BootstrapFixtureState f;
    return f;
}

void
BM_CkksBootstrap(benchmark::State& state)
{
    auto& f = bootstrapFixture();
    PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.boot.bootstrap(f.eval, f.ct));
}
BENCHMARK(BM_CkksBootstrap)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("micro_ckks");
