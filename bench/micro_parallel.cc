/**
 * @file
 * Thread-scaling microbenchmarks for the parallel RNS execution layer:
 * mulRelin, rotate and a full-limb NTT at the acceptance configuration
 * N = 2^14 with 12 limbs, swept across HYDRA_THREADS in {1, 2, 4, 8}
 * via ThreadPool::setThreadCount.  Run with --benchmark_filter=Small
 * for a quick laptop-scale sweep at N = 2^12.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "fhe/encryptor.hh"
#include "fhe/evaluator.hh"
#include "fhe/keygen.hh"
#include "math/primes.hh"

namespace hydra {
namespace {

/** Keys plus one encrypted operand for a given (n, levels). */
struct ParallelFixture
{
    explicit ParallelFixture(const CkksParams& p)
        : ctx(p),
          encoder(ctx),
          keygen(ctx),
          sk(keygen.secretKey()),
          pk(keygen.publicKey(sk)),
          relin(keygen.relinKey(sk)),
          galois(keygen.galoisKeys(sk, {1}, false)),
          encryptor(ctx, pk),
          eval(ctx, encoder)
    {
        eval.setRelinKey(&relin);
        eval.setGaloisKeys(&galois);
        std::vector<double> v(ctx.slots(), 0.5);
        ct = encryptor.encrypt(
            encoder.encode(v, ctx.params().scale(), ctx.levels()));
    }

    CkksContext ctx;
    CkksEncoder encoder;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    EvalKey relin;
    GaloisKeys galois;
    Encryptor encryptor;
    Evaluator eval;
    Ciphertext ct;
};

CkksParams
acceptanceParams()
{
    // The ISSUE acceptance point: N = 2^14, 12 RNS limbs.
    CkksParams p;
    p.n = 1 << 14;
    p.levels = 12;
    return p;
}

CkksParams
smallParams()
{
    CkksParams p;
    p.n = 1 << 12;
    p.levels = 8;
    return p;
}

ParallelFixture&
fixture()
{
    static ParallelFixture f(acceptanceParams());
    return f;
}

ParallelFixture&
smallFixture()
{
    static ParallelFixture f(smallParams());
    return f;
}

void
runMulRelin(benchmark::State& state, ParallelFixture& f)
{
    ThreadPool::instance().setThreadCount(
        static_cast<size_t>(state.range(0)));
    bench::PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.mulRelin(f.ct, f.ct));
    ThreadPool::instance().setThreadCount(1);
}

void
runRotate(benchmark::State& state, ParallelFixture& f)
{
    ThreadPool::instance().setThreadCount(
        static_cast<size_t>(state.range(0)));
    bench::PoolCounterScope pool(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.eval.rotate(f.ct, 1));
    ThreadPool::instance().setThreadCount(1);
}

void
runNttAllLimbs(benchmark::State& state, ParallelFixture& f)
{
    ThreadPool::instance().setThreadCount(
        static_cast<size_t>(state.range(0)));
    RnsPoly p = f.ct.c0;
    for (auto _ : state) {
        p.fromNtt();
        p.toNtt();
        benchmark::DoNotOptimize(p.limb(0).data());
    }
    ThreadPool::instance().setThreadCount(1);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                            static_cast<int64_t>(p.limbCount()));
}

void
BM_MulRelin(benchmark::State& state)
{
    runMulRelin(state, fixture());
}
BENCHMARK(BM_MulRelin)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_Rotate(benchmark::State& state)
{
    runRotate(state, fixture());
}
BENCHMARK(BM_Rotate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_NttAllLimbs(benchmark::State& state)
{
    runNttAllLimbs(state, fixture());
}
BENCHMARK(BM_NttAllLimbs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_SmallMulRelin(benchmark::State& state)
{
    runMulRelin(state, smallFixture());
}
BENCHMARK(BM_SmallMulRelin)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_SmallRotate(benchmark::State& state)
{
    runRotate(state, smallFixture());
}
BENCHMARK(BM_SmallRotate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("micro_parallel");
