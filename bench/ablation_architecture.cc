/**
 * @file
 * Architecture ablations for the design choices DESIGN.md calls out:
 *   A. DTU compute/communication overlap (paper Section IV-B)
 *   B. switch broadcast vs sequential unicast
 *   C. MAD-style scratchpad caching (HBM traffic factor)
 *   D. radix-4 vs radix-2 NTT units
 *   E. keyswitching digit count (dnum)
 * Each section reports end-to-end ResNet-18 / OPT-6.7B time on an
 * 8-card machine with only that knob changed.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "sched/mapping.hh"

using namespace hydra;
using namespace hydra::bench;

namespace {

/** Wraps a network model, forcing transfers to block compute. */
class NoOverlapNetwork : public NetworkModel
{
  public:
    explicit NoOverlapNetwork(const NetworkModel& inner)
        : inner_(inner.clone())
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<NoOverlapNetwork>(*inner_);
    }

    Tick
    transferTime(uint64_t b, size_t s, size_t d) const override
    {
        return inner_->transferTime(b, s, d);
    }

    Tick
    broadcastTime(uint64_t b, size_t s, size_t n) const override
    {
        return inner_->broadcastTime(b, s, n);
    }

    Tick setupLatency() const override { return inner_->setupLatency(); }
    bool overlapsCompute() const override { return false; }

    Tick
    stepSyncLatency() const override
    {
        return inner_->stepSyncLatency();
    }

  private:
    std::unique_ptr<NetworkModel> inner_;
};

/** Wraps a network model, replacing broadcast by sequential unicast. */
class UnicastOnlyNetwork : public NetworkModel
{
  public:
    explicit UnicastOnlyNetwork(const NetworkModel& inner)
        : inner_(inner.clone())
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<UnicastOnlyNetwork>(*inner_);
    }

    Tick
    transferTime(uint64_t b, size_t s, size_t d) const override
    {
        return inner_->transferTime(b, s, d);
    }

    Tick
    broadcastTime(uint64_t b, size_t s, size_t n) const override
    {
        // The sender serializes n-1 point-to-point transfers.
        return static_cast<Tick>(n - 1) * inner_->transferTime(b, s, 0);
    }

    Tick setupLatency() const override { return inner_->setupLatency(); }
    bool overlapsCompute() const override { return true; }

    Tick
    stepSyncLatency() const override
    {
        return inner_->stepSyncLatency();
    }

  private:
    std::unique_ptr<NetworkModel> inner_;
};

double
runWith(const PrototypeSpec& spec, const NetworkModel& net,
        const WorkloadModel& wl)
{
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    StepMapper mapper(cost, net, spec.cluster.totalCards(), wl.logSlots,
                      spec.mapping);
    ClusterExecutor executor(spec.cluster, net);
    RunStats total;
    for (const auto& step : wl.steps) {
        Program prog = mapper.mapStep(step);
        total.append(executor.run(prog), net.stepSyncLatency());
    }
    return ticksToSeconds(total.makespan);
}

} // namespace

int
main()
{
    printHeaderBlock("Architecture ablations (Hydra-M, 8 cards)");

    WorkloadModel r18 = makeResNet18();
    WorkloadModel opt = makeOpt67B();
    PrototypeSpec base = hydraMSpec();
    SwitchedNetwork base_net(base.net, base.cluster);
    double r18_base = runWith(base, base_net, r18);
    double opt_base = runWith(base, base_net, opt);

    TextTable t;
    t.header({"Variant", "ResNet-18 s", "slowdown", "OPT-6.7B s",
              "slowdown"});
    t.addRow({"Hydra-M baseline", fmtF(r18_base, 2), fmtX(1.0),
              fmtF(opt_base, 1), fmtX(1.0)});

    {
        NoOverlapNetwork net(base_net);
        double a = runWith(base, net, r18);
        double b = runWith(base, net, opt);
        t.addRow({"A. no DTU overlap", fmtF(a, 2), fmtX(a / r18_base),
                  fmtF(b, 1), fmtX(b / opt_base)});
    }
    {
        UnicastOnlyNetwork net(base_net);
        double a = runWith(base, net, r18);
        double b = runWith(base, net, opt);
        t.addRow({"B. no switch broadcast", fmtF(a, 2),
                  fmtX(a / r18_base), fmtF(b, 1), fmtX(b / opt_base)});
    }
    for (double factor : {2.0, 3.0}) {
        PrototypeSpec spec = hydraMSpec();
        spec.fpga.hbmTrafficFactor = factor;
        SwitchedNetwork net(spec.net, spec.cluster);
        double a = runWith(spec, net, r18);
        double b = runWith(spec, net, opt);
        t.addRow({strf("C. HBM traffic x%.0f (no MAD cache)", factor),
                  fmtF(a, 2), fmtX(a / r18_base), fmtF(b, 1),
                  fmtX(b / opt_base)});
    }
    {
        PrototypeSpec spec = hydraMSpec();
        spec.fpga.nttRadix = 2;
        SwitchedNetwork net(spec.net, spec.cluster);
        double a = runWith(spec, net, r18);
        double b = runWith(spec, net, opt);
        t.addRow({"D. radix-2 NTT (vs radix-4)", fmtF(a, 2),
                  fmtX(a / r18_base), fmtF(b, 1), fmtX(b / opt_base)});
    }
    {
        PrototypeSpec spec = hydraMSpec();
        spec.fpga.scratchpadBytes = 8ull << 20;
        spec.fpga.scratchpadOverflowPenalty = 1.0;
        SwitchedNetwork net(spec.net, spec.cluster);
        double a = runWith(spec, net, r18);
        double b = runWith(spec, net, opt);
        t.addRow({"C'. 8 MiB scratchpad (capacity model)", fmtF(a, 2),
                  fmtX(a / r18_base), fmtF(b, 1), fmtX(b / opt_base)});
    }
    for (size_t dnum : {1, 2, 8}) {
        PrototypeSpec spec = hydraMSpec();
        spec.dnum = dnum;
        SwitchedNetwork net(spec.net, spec.cluster);
        double a = runWith(spec, net, r18);
        double b = runWith(spec, net, opt);
        t.addRow({strf("E. dnum = %zu (vs 4)", dnum), fmtF(a, 2),
                  fmtX(a / r18_base), fmtF(b, 1), fmtX(b / opt_base)});
    }
    t.print();

    std::printf("\nReadings: the DTU and MAD-style caching are the two\n"
                "largest single-card/overlap wins; broadcast matters most\n"
                "for the CNN's Fig. 2 aggregation; radix-4 NTT nearly\n"
                "halves the dominant CU's passes.\n");
    return 0;
}
