/**
 * @file
 * Google-benchmark harness for the schedule compiler (plan -> lower ->
 * optimize -> cache): per-stage wall time over a whole workload's
 * steps, plus the ProgramCache's cold/warm cost split.  Counters
 * export compiled-program shape (tasks, messages) and cache hit rate,
 * so `--json` snapshots (BENCH_compile.json) track compilation cost
 * and reuse across PRs.
 *
 * Cases:
 *   BM_Plan/<m>-<wl>      StepMapper::planStep: machine-independent IR
 *   BM_Lower/<m>-<wl>     lowerPlan: bind cost + network models
 *   BM_Optimize/<m>-<wl>  optimizeProgram at Aggressive (all passes)
 *   BM_CompileCold        full pipeline, cache cleared every iteration
 *   BM_CompileWarm        full pipeline through a warm ProgramCache
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baselines/prototypes.hh"
#include "bench_util.hh"
#include "sched/progcache.hh"

namespace hydra {
namespace {

/** Everything a compile bench needs for one (machine, workload). */
struct CompileSetup
{
    PrototypeSpec spec;
    WorkloadModel wl;
    OpCostModel cost;
    std::unique_ptr<NetworkModel> net;

    CompileSetup(PrototypeSpec s, const char* workload)
        : spec(std::move(s)), wl(workloadByName(workload)),
          cost(spec.fpga, size_t{1} << 16, spec.dnum),
          net(spec.makeNetwork())
    {
    }

    StepMapper
    mapper() const
    {
        return StepMapper(cost, *net, spec.cluster.totalCards(),
                          wl.logSlots, spec.mapping);
    }
};

void
BM_Plan(benchmark::State& state, const char* machine,
        const char* workload)
{
    CompileSetup s(machineByName(machine), workload);
    StepMapper mapper = s.mapper();
    uint64_t ops = 0;
    for (auto _ : state) {
        ops = 0;
        for (const auto& step : s.wl.steps) {
            LogicalPlan plan = mapper.planStep(step);
            ops += plan.ops.size();
            benchmark::DoNotOptimize(plan.ops.data());
        }
    }
    state.counters["steps"] = static_cast<double>(s.wl.steps.size());
    state.counters["plan_ops"] = static_cast<double>(ops);
}

void
BM_Lower(benchmark::State& state, const char* machine,
         const char* workload)
{
    CompileSetup s(machineByName(machine), workload);
    StepMapper mapper = s.mapper();
    std::vector<LogicalPlan> plans;
    for (const auto& step : s.wl.steps)
        plans.push_back(mapper.planStep(step));
    uint64_t tasks = 0;
    for (auto _ : state) {
        tasks = 0;
        for (const auto& plan : plans) {
            Program prog = lowerPlan(plan, s.cost, *s.net,
                                     s.spec.mapping);
            tasks += countProgram(prog).computeTasks;
            benchmark::DoNotOptimize(tasks);
        }
    }
    state.counters["compute_tasks"] = static_cast<double>(tasks);
}

void
BM_Optimize(benchmark::State& state, const char* machine,
            const char* workload)
{
    CompileSetup s(machineByName(machine), workload);
    StepMapper mapper = s.mapper();
    std::vector<Program> programs;
    for (const auto& step : s.wl.steps)
        programs.push_back(lowerPlan(mapper.planStep(step), s.cost,
                                     *s.net, s.spec.mapping));
    uint64_t changes = 0;
    for (auto _ : state) {
        changes = 0;
        for (const auto& prog : programs) {
            OptReport report;
            Program opt = optimizeProgram(prog, OptLevel::Aggressive,
                                          s.net->overlapsCompute(),
                                          &report);
            changes += report.totalChanges();
            benchmark::DoNotOptimize(opt.cards);
        }
    }
    state.counters["pass_changes"] = static_cast<double>(changes);
}

/** Full pipeline through the cache; `warm` keeps entries across
 *  iterations (steady-state serving), cold clears them (first job). */
void
compileCached(benchmark::State& state, const char* machine,
              const char* workload, bool warm)
{
    CompileSetup s(machineByName(machine), workload);
    ProgramCache& cache = ProgramCache::global();
    auto compileAll = [&] {
        for (const auto& step : s.wl.steps) {
            std::string key =
                stepCacheKey(s.spec, s.spec.cluster, s.spec.cluster,
                             s.cost.n(), s.wl.logSlots, step);
            auto compiled = cache.getOrCompile(key, [&] {
                return compileStep(s.cost, *s.net,
                                   s.spec.cluster.totalCards(),
                                   s.wl.logSlots, s.spec.mapping,
                                   step);
            });
            benchmark::DoNotOptimize(compiled.get());
        }
    };
    if (warm)
        compileAll();
    ProgramCache::Stats before = cache.stats();
    for (auto _ : state) {
        if (!warm) {
            state.PauseTiming();
            cache.clear();
            state.ResumeTiming();
        }
        compileAll();
    }
    ProgramCache::Stats after = cache.stats();
    uint64_t hits = after.hits - before.hits;
    uint64_t misses = after.misses - before.misses;
    state.counters["cache_hits"] = static_cast<double>(hits);
    state.counters["cache_misses"] = static_cast<double>(misses);
    state.counters["cache_hit_rate"] =
        hits + misses ? static_cast<double>(hits) /
                            static_cast<double>(hits + misses)
                      : 0.0;
}

void
BM_PlanM(benchmark::State& state)
{
    BM_Plan(state, "hydra-m", "resnet18");
}
BENCHMARK(BM_PlanM)->Unit(benchmark::kMicrosecond);

void
BM_PlanFabM(benchmark::State& state)
{
    BM_Plan(state, "fab-m", "resnet18");
}
BENCHMARK(BM_PlanFabM)->Unit(benchmark::kMicrosecond);

void
BM_LowerM(benchmark::State& state)
{
    BM_Lower(state, "hydra-m", "resnet18");
}
BENCHMARK(BM_LowerM)->Unit(benchmark::kMicrosecond);

void
BM_OptimizeM(benchmark::State& state)
{
    BM_Optimize(state, "hydra-m", "resnet18");
}
BENCHMARK(BM_OptimizeM)->Unit(benchmark::kMicrosecond);

void
BM_CompileCold(benchmark::State& state)
{
    compileCached(state, "hydra-m", "resnet18", false);
}
BENCHMARK(BM_CompileCold)->Unit(benchmark::kMicrosecond);

void
BM_CompileWarm(benchmark::State& state)
{
    compileCached(state, "hydra-m", "resnet18", true);
}
BENCHMARK(BM_CompileWarm)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("compile")
