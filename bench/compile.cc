/**
 * @file
 * Google-benchmark harness for the schedule compiler (plan -> lower ->
 * optimize -> cache): per-stage wall time over a whole workload's
 * steps, plus the ProgramCache's cold/warm cost split.  Counters
 * export compiled-program shape (tasks, messages) and cache hit rate,
 * so `--json` snapshots (BENCH_compile.json) track compilation cost
 * and reuse across PRs.
 *
 * Cases:
 *   BM_Plan/<m>-<wl>      StepMapper::planStep: machine-independent IR
 *   BM_Lower/<m>-<wl>     lowerPlan: bind cost + network models
 *   BM_Optimize/<m>-<wl>  optimizeProgram at Aggressive (all passes)
 *   BM_CompileCold        full pipeline, cache cleared every iteration
 *   BM_CompileWarm        full pipeline through a warm ProgramCache
 *   BM_CompileEvict       warm pipeline under a tiny LRU cap: every
 *                         compile misses and evicts (thrash cost)
 *   BM_GraphCompile/<wl>  network compiler over a registry model at
 *                         Aggressive (cross-step passes + unit compile)
 *   BM_NetMakespan/<wl>   graph runner end to end; counters export the
 *                         Safe vs Aggressive makespans (the cross-step
 *                         passes' modeled win, tracked across PRs)
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baselines/prototypes.hh"
#include "bench_util.hh"
#include "sched/graph/modelspec.hh"
#include "sched/graph/netcompile.hh"
#include "sched/progcache.hh"

namespace hydra {
namespace {

/** Everything a compile bench needs for one (machine, workload). */
struct CompileSetup
{
    PrototypeSpec spec;
    WorkloadModel wl;
    OpCostModel cost;
    std::unique_ptr<NetworkModel> net;

    CompileSetup(PrototypeSpec s, const char* workload)
        : spec(std::move(s)), wl(workloadByName(workload)),
          cost(spec.fpga, size_t{1} << 16, spec.dnum),
          net(spec.makeNetwork())
    {
    }

    StepMapper
    mapper() const
    {
        return StepMapper(cost, *net, spec.cluster.totalCards(),
                          wl.logSlots, spec.mapping);
    }
};

void
BM_Plan(benchmark::State& state, const char* machine,
        const char* workload)
{
    CompileSetup s(machineByName(machine), workload);
    StepMapper mapper = s.mapper();
    uint64_t ops = 0;
    for (auto _ : state) {
        ops = 0;
        for (const auto& step : s.wl.steps) {
            LogicalPlan plan = mapper.planStep(step);
            ops += plan.ops.size();
            benchmark::DoNotOptimize(plan.ops.data());
        }
    }
    state.counters["steps"] = static_cast<double>(s.wl.steps.size());
    state.counters["plan_ops"] = static_cast<double>(ops);
}

void
BM_Lower(benchmark::State& state, const char* machine,
         const char* workload)
{
    CompileSetup s(machineByName(machine), workload);
    StepMapper mapper = s.mapper();
    std::vector<LogicalPlan> plans;
    for (const auto& step : s.wl.steps)
        plans.push_back(mapper.planStep(step));
    uint64_t tasks = 0;
    for (auto _ : state) {
        tasks = 0;
        for (const auto& plan : plans) {
            Program prog = lowerPlan(plan, s.cost, *s.net,
                                     s.spec.mapping);
            tasks += countProgram(prog).computeTasks;
            benchmark::DoNotOptimize(tasks);
        }
    }
    state.counters["compute_tasks"] = static_cast<double>(tasks);
}

void
BM_Optimize(benchmark::State& state, const char* machine,
            const char* workload)
{
    CompileSetup s(machineByName(machine), workload);
    StepMapper mapper = s.mapper();
    std::vector<Program> programs;
    for (const auto& step : s.wl.steps)
        programs.push_back(lowerPlan(mapper.planStep(step), s.cost,
                                     *s.net, s.spec.mapping));
    uint64_t changes = 0;
    for (auto _ : state) {
        changes = 0;
        for (const auto& prog : programs) {
            OptReport report;
            Program opt = optimizeProgram(prog, OptLevel::Aggressive,
                                          s.net->overlapsCompute(),
                                          &report);
            changes += report.totalChanges();
            benchmark::DoNotOptimize(opt.cards);
        }
    }
    state.counters["pass_changes"] = static_cast<double>(changes);
}

/** Full pipeline through the cache; `warm` keeps entries across
 *  iterations (steady-state serving), cold clears them (first job). */
void
compileCached(benchmark::State& state, const char* machine,
              const char* workload, bool warm)
{
    CompileSetup s(machineByName(machine), workload);
    ProgramCache& cache = ProgramCache::global();
    auto compileAll = [&] {
        for (const auto& step : s.wl.steps) {
            std::string key =
                stepCacheKey(s.spec, s.spec.cluster, s.spec.cluster,
                             s.cost.n(), s.wl.logSlots, step);
            auto compiled = cache.getOrCompile(key, [&] {
                return compileStep(s.cost, *s.net,
                                   s.spec.cluster.totalCards(),
                                   s.wl.logSlots, s.spec.mapping,
                                   step);
            });
            benchmark::DoNotOptimize(compiled.get());
        }
    };
    if (warm)
        compileAll();
    ProgramCache::Stats before = cache.stats();
    for (auto _ : state) {
        if (!warm) {
            state.PauseTiming();
            cache.clear();
            state.ResumeTiming();
        }
        compileAll();
    }
    ProgramCache::Stats after = cache.stats();
    uint64_t hits = after.hits - before.hits;
    uint64_t misses = after.misses - before.misses;
    state.counters["cache_hits"] = static_cast<double>(hits);
    state.counters["cache_misses"] = static_cast<double>(misses);
    state.counters["cache_hit_rate"] =
        hits + misses ? static_cast<double>(hits) /
                            static_cast<double>(hits + misses)
                      : 0.0;
    state.counters["cache_evictions"] =
        static_cast<double>(after.evictions - before.evictions);
}

/** Warm-style loop under an LRU cap smaller than the working set:
 *  every compile misses and evicts — the cache-thrash floor. */
void
BM_CompileEvict(benchmark::State& state)
{
    CompileSetup s(machineByName("hydra-m"), "resnet18");
    ProgramCache cache; // local: don't poison the global cache
    cache.setCapacity(2);
    for (auto _ : state) {
        for (const auto& step : s.wl.steps) {
            std::string key =
                stepCacheKey(s.spec, s.spec.cluster, s.spec.cluster,
                             s.cost.n(), s.wl.logSlots, step);
            auto compiled = cache.getOrCompile(key, [&] {
                return compileStep(s.cost, *s.net,
                                   s.spec.cluster.totalCards(),
                                   s.wl.logSlots, s.spec.mapping,
                                   step);
            });
            benchmark::DoNotOptimize(compiled.get());
        }
    }
    ProgramCache::Stats st = cache.stats();
    state.counters["cache_evictions"] = static_cast<double>(st.evictions);
    state.counters["cache_hit_rate"] = st.hitRate();
}
BENCHMARK(BM_CompileEvict)->Unit(benchmark::kMicrosecond);

/** Network compiler over a declarative registry model: cross-step
 *  passes plus per-unit compilation (cache cleared per iteration). */
void
BM_GraphCompile(benchmark::State& state, const char* machine,
                const char* model)
{
    PrototypeSpec spec = machineByName(machine);
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    std::unique_ptr<NetworkModel> net = spec.makeNetwork();
    NetworkGraph graph = modelGraphByName(model);
    uint64_t units = 0, changes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        ProgramCache::global().clear();
        state.ResumeTiming();
        CompiledNetwork cn = compileNetwork(spec, cost, *net, graph,
                                            OptLevel::Aggressive);
        units = cn.units.size();
        changes = cn.report.totalChanges();
        benchmark::DoNotOptimize(cn.programs.data());
    }
    state.counters["layers"] = static_cast<double>(graph.nodes.size());
    state.counters["units"] = static_cast<double>(units);
    state.counters["pass_changes"] = static_cast<double>(changes);
}

/** Graph runner end to end; exports the Safe and Aggressive makespans
 *  so BENCH_compile.json records the cross-step passes' win. */
void
BM_NetMakespan(benchmark::State& state, const char* machine,
               const char* model)
{
    InferenceRunner runner(machineByName(machine));
    NetworkGraph graph = modelGraphByName(model);
    Tick safe = 0, aggressive = 0;
    for (auto _ : state) {
        safe = runner.runGraph(graph, OptLevel::Safe).total.makespan;
        aggressive =
            runner.runGraph(graph, OptLevel::Aggressive).total.makespan;
        benchmark::DoNotOptimize(safe);
        benchmark::DoNotOptimize(aggressive);
    }
    state.counters["makespan_safe_s"] = ticksToSeconds(safe);
    state.counters["makespan_aggressive_s"] = ticksToSeconds(aggressive);
    state.counters["speedup"] =
        aggressive ? static_cast<double>(safe) /
                         static_cast<double>(aggressive)
                   : 0.0;
}

void
BM_PlanM(benchmark::State& state)
{
    BM_Plan(state, "hydra-m", "resnet18");
}
BENCHMARK(BM_PlanM)->Unit(benchmark::kMicrosecond);

void
BM_PlanFabM(benchmark::State& state)
{
    BM_Plan(state, "fab-m", "resnet18");
}
BENCHMARK(BM_PlanFabM)->Unit(benchmark::kMicrosecond);

void
BM_LowerM(benchmark::State& state)
{
    BM_Lower(state, "hydra-m", "resnet18");
}
BENCHMARK(BM_LowerM)->Unit(benchmark::kMicrosecond);

void
BM_OptimizeM(benchmark::State& state)
{
    BM_Optimize(state, "hydra-m", "resnet18");
}
BENCHMARK(BM_OptimizeM)->Unit(benchmark::kMicrosecond);

void
BM_CompileCold(benchmark::State& state)
{
    compileCached(state, "hydra-m", "resnet18", false);
}
BENCHMARK(BM_CompileCold)->Unit(benchmark::kMicrosecond);

void
BM_CompileWarm(benchmark::State& state)
{
    compileCached(state, "hydra-m", "resnet18", true);
}
BENCHMARK(BM_CompileWarm)->Unit(benchmark::kMicrosecond);

void
BM_GraphCompileResNet50(benchmark::State& state)
{
    BM_GraphCompile(state, "hydra-m", "resnet50");
}
BENCHMARK(BM_GraphCompileResNet50)->Unit(benchmark::kMicrosecond);

void
BM_GraphCompileBert(benchmark::State& state)
{
    BM_GraphCompile(state, "hydra-m", "bert");
}
BENCHMARK(BM_GraphCompileBert)->Unit(benchmark::kMicrosecond);

void
BM_NetMakespanResNet50(benchmark::State& state)
{
    BM_NetMakespan(state, "hydra-m", "resnet50");
}
BENCHMARK(BM_NetMakespanResNet50)->Unit(benchmark::kMillisecond);

void
BM_NetMakespanBert(benchmark::State& state)
{
    BM_NetMakespan(state, "hydra-m", "bert");
}
BENCHMARK(BM_NetMakespanBert)->Unit(benchmark::kMillisecond);

void
BM_NetMakespanOpt(benchmark::State& state)
{
    BM_NetMakespan(state, "fab-m", "opt");
}
BENCHMARK(BM_NetMakespanOpt)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("compile")
