/**
 * @file
 * Google-benchmark microbenchmarks of the architecture model: per-op
 * modelled latencies across levels, DFT plan optimization, and program
 * mapping + simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include "baselines/prototypes.hh"
#include "model/dft_model.hh"
#include "sched/mapping.hh"
#include "sync/executor.hh"

namespace hydra {
namespace {

const FpgaParams kFpga{};

void
BM_OpCostRotate(benchmark::State& state)
{
    OpCostModel m(kFpga, size_t{1} << 16, 4);
    size_t limbs = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.opLatency(HeOpType::Rotate, limbs));
    }
    state.counters["modelled_us"] =
        ticksToSeconds(m.opLatency(HeOpType::Rotate, limbs)) * 1e6;
}
BENCHMARK(BM_OpCostRotate)->Arg(4)->Arg(12)->Arg(24);

void
BM_OpCostCMult(benchmark::State& state)
{
    OpCostModel m(kFpga, size_t{1} << 16, 4);
    size_t limbs = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.opLatency(HeOpType::CMult, limbs));
    }
    state.counters["modelled_us"] =
        ticksToSeconds(m.opLatency(HeOpType::CMult, limbs)) * 1e6;
}
BENCHMARK(BM_OpCostCMult)->Arg(4)->Arg(12)->Arg(24);

void
BM_DftPlanOptimize(benchmark::State& state)
{
    OpCostModel m(kFpga, size_t{1} << 16, 4);
    SwitchedNetwork net(NetParams{}, hydraL());
    DftOpTimes t = DftOpTimes::fromCostModel(m, net, 18);
    size_t cards = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimizeDftPlan(3, 15, cards, t));
    }
}
BENCHMARK(BM_DftPlanOptimize)->Arg(1)->Arg(8)->Arg(64);

void
BM_MapAndSimulateConvStep(benchmark::State& state)
{
    size_t cards = static_cast<size_t>(state.range(0));
    PrototypeSpec spec = hydraPrototype(
        "bench", cards <= 8 ? 1 : cards / 8, cards <= 8 ? cards : 8);
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    auto net = spec.makeNetwork();
    StepMapper mapper(cost, *net, cards, 15);
    ClusterExecutor ex(spec.cluster, *net);
    Step step{ProcKind::ConvBN, "conv", 1024, convBnMix(), 12,
              AggKind::BroadcastEach, 0, 1.0, 32};
    for (auto _ : state) {
        Program prog = mapper.mapStep(step);
        RunStats stats = ex.run(prog);
        benchmark::DoNotOptimize(stats.makespan);
    }
}
BENCHMARK(BM_MapAndSimulateConvStep)->Arg(1)->Arg(8)->Arg(64);

void
BM_FullInference(benchmark::State& state)
{
    PrototypeSpec spec = hydraMSpec();
    InferenceRunner runner(spec);
    WorkloadModel wl = makeResNet18();
    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.run(wl).total.makespan);
    }
}
BENCHMARK(BM_FullInference);

} // namespace
} // namespace hydra

HYDRA_BENCH_MAIN("micro_ops");
