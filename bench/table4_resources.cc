/**
 * @file
 * Reproduces paper Table IV: FPGA resource utilization of a single
 * Hydra card on the Xilinx Alveo U280.
 */

#include "analysis/resources.hh"
#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock("Table IV: FPGA resource utilization (single card)");

    FpgaParams fpga;
    ResourceUsage used = estimateResources(fpga);
    ResourceUsage avail = u280Available();

    TextTable t;
    t.header({"Resource", "Utilized", "Available", "Utilization",
              "paper"});
    auto pct = [](double u, double a) { return fmtPct(u / a, 1); };
    t.addRow({"LUTs (k)", fmtF(used.lutsK, 0), fmtF(avail.lutsK, 0),
              pct(used.lutsK, avail.lutsK), "76.5%"});
    t.addRow({"FFs (k)", fmtF(used.ffsK, 0), fmtF(avail.ffsK, 0),
              pct(used.ffsK, avail.ffsK), "52.7%"});
    t.addRow({"DSP", std::to_string(used.dsp), std::to_string(avail.dsp),
              pct(used.dsp, avail.dsp), "96.5%"});
    t.addRow({"BRAM", std::to_string(used.bram),
              std::to_string(avail.bram), pct(used.bram, avail.bram),
              "76.2%"});
    t.addRow({"URAM", std::to_string(used.uram),
              std::to_string(avail.uram), pct(used.uram, avail.uram),
              "79.8%"});
    t.print();
    return 0;
}
