/**
 * @file
 * Reproduces paper Fig. 8: communication vs computation overhead of
 * Hydra-{M,L} against FAB-{M,L} (same task mapping on both
 * architectures), per benchmark and per key procedure.
 */

#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

namespace {

void
compareRow(TextTable& t, const std::string& label,
           const InferenceResult& hydra, const InferenceResult& fab)
{
    t.addRow({label,
              fmtF(hydra.seconds(), 2),
              fmtPct(hydra.commFraction(), 2),
              fmtF(fab.seconds(), 2),
              fmtPct(fab.commFraction(), 2),
              fmtX(fab.seconds() / hydra.seconds())});
}

} // namespace

int
main()
{
    printHeaderBlock(
        "Fig. 8: scalability -- comm/comp overhead, Hydra vs FAB");

    struct Pair
    {
        PrototypeSpec hydra;
        PrototypeSpec fab;
    };
    std::vector<Pair> pairs;
    pairs.push_back({hydraMSpec(), fabMSpec()});
    pairs.push_back({hydraLSpec(), fabLSpec()});

    for (auto& pr : pairs) {
        InferenceRunner hr(pr.hydra);
        InferenceRunner fr(pr.fab);

        TextTable t("\n" + pr.hydra.name + " vs " + pr.fab.name);
        t.header({"Benchmark", "Hydra s", "Hydra comm%", "FAB s",
                  "FAB comm%", "FAB/Hydra"});
        for (const auto& wl : allBenchmarks()) {
            InferenceResult h = hr.run(wl);
            InferenceResult f = fr.run(wl);
            compareRow(t, wl.name, h, f);
        }
        t.print();

        // Per-procedure comm fraction on OPT-6.7B (paper highlights
        // Boot and Pooling reaching ~90% on FAB-L).
        WorkloadModel wl = makeOpt67B();
        InferenceResult h = hr.run(wl);
        InferenceResult f = fr.run(wl);
        TextTable p("\nPer-procedure comm fraction, OPT-6.7B ("
                    + pr.hydra.name + " / " + pr.fab.name + ")");
        p.header({"Procedure", "Hydra comm%", "FAB comm%"});
        for (ProcKind k : {ProcKind::PCMM, ProcKind::CCMM,
                           ProcKind::NonLinear, ProcKind::Norm,
                           ProcKind::Bootstrap}) {
            if (h.procTime(k) == 0)
                continue;
            p.addRow({procName(k), fmtPct(h.procCommFraction(k), 1),
                      fmtPct(f.procCommFraction(k), 1)});
        }
        p.print();
    }

    std::printf("\nPaper highlights: communication overhead in Hydra-M\n"
                "and Hydra-L is ~0.04%% and ~1.4%% on OPT-6.7B; FAB's\n"
                "host-mediated path pushes procedures like Boot toward\n"
                "90%% communication at 64 cards.\n");
    return 0;
}
