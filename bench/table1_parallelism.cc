/**
 * @file
 * Reproduces paper Table I: application-level parallelism of the four
 * FHE-based DL models (min/max per-step parallelism per procedure) and
 * the per-unit ciphertext operation mixes.
 */

#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock("Table I: parallelism of FHE-based DL inference");

    auto models = allBenchmarks();

    TextTable t;
    t.header({"Layer", "ResNet-18", "ResNet-50", "BERT-base", "OPT-6.7B",
              "Rot", "CMult", "PMult", "HAdd"});

    struct RowSpec
    {
        const char* name;
        ProcKind kind;
        OpMix mix;
    };
    const RowSpec rows[] = {
        {"ConvBN", ProcKind::ConvBN, convBnMix()},
        {"Pooling", ProcKind::Pooling, poolingMix()},
        {"FC", ProcKind::FC, fcMix()},
        {"PCMM", ProcKind::PCMM, pcmmMix()},
        {"CCMM", ProcKind::CCMM, ccmmMix()},
        {"Non-linear", ProcKind::NonLinear, nonLinearMix()},
    };

    auto range = [](const WorkloadModel& m, ProcKind k) -> std::string {
        auto [lo, hi] = m.parallelismRange(k);
        if (hi == 0)
            return "NA";
        return std::to_string(lo) + " / " + std::to_string(hi);
    };

    for (const auto& r : rows) {
        t.addRow({r.name, range(models[0], r.kind), range(models[1], r.kind),
                  range(models[2], r.kind), range(models[3], r.kind),
                  std::to_string(r.mix.rotations),
                  std::to_string(r.mix.cmults),
                  std::to_string(r.mix.pmults),
                  std::to_string(r.mix.hadds)});
    }
    // Ciphertext row: bootstrap counts track the live ciphertexts.
    t.addRow({"Ciphertext", range(models[0], ProcKind::Bootstrap),
              range(models[1], ProcKind::Bootstrap),
              range(models[2], ProcKind::Bootstrap),
              range(models[3], ProcKind::Bootstrap), "-", "-", "-", "-"});
    t.print();

    TextTable s("\nPer-model step inventory");
    s.header({"Model", "steps", "ConvBN", "NonLin", "Boot", "PCMM",
              "CCMM"});
    for (const auto& m : models) {
        s.addRow({m.name, std::to_string(m.steps.size()),
                  std::to_string(m.stepCount(ProcKind::ConvBN)),
                  std::to_string(m.stepCount(ProcKind::NonLinear)),
                  std::to_string(m.stepCount(ProcKind::Bootstrap)),
                  std::to_string(m.stepCount(ProcKind::PCMM)),
                  std::to_string(m.stepCount(ProcKind::CCMM))});
    }
    s.print();
    return 0;
}
