/**
 * @file
 * Reproduces paper Table III: EDAP (energy-delay-area product,
 * 7nm-standardized) of the Hydra prototypes against published ASIC
 * numbers.  Lower is better.
 */

#include "analysis/energy.hh"
#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

namespace {

double
runEdap(const PrototypeSpec& spec, const WorkloadModel& wl)
{
    InferenceRunner runner(spec);
    InferenceResult res = runner.run(wl);
    EnergyParams ep = asicEnergyParams();
    size_t cards = spec.cluster.totalCards();
    EnergyBreakdown e =
        computeEnergy(res.total, ep, spec.fpga, cards);
    double area = hydraCardAreaMm2() * static_cast<double>(cards);
    return edap(e.total(), res.seconds(), area);
}

} // namespace

int
main()
{
    printHeaderBlock("Table III: efficiency (EDAP, lower is better)");

    auto models = allBenchmarks();

    TextTable t;
    t.header({"Machine", "ResNet-18", "ResNet-50", "BERT-base",
              "OPT-6.7B", "source"});
    for (const auto& row : asicEdapTable())
        t.addRow({row.name, fmtF(row.resnet18, 2), fmtF(row.resnet50, 1),
                  fmtF(row.bert, 1), fmtF(row.opt, 0), "published"});
    t.addSeparator();

    std::vector<PrototypeSpec> specs;
    specs.push_back(hydraSSpec());
    specs.push_back(hydraMSpec());
    specs.push_back(hydraLSpec());

    std::vector<std::vector<double>> vals;
    for (const auto& spec : specs) {
        std::vector<double> row;
        for (const auto& wl : models)
            row.push_back(runEdap(spec, wl));
        vals.push_back(row);
        t.addRow({spec.name, fmtF(row[0], 2), fmtF(row[1], 1),
                  fmtF(row[2], 1), fmtF(row[3], 0), "simulated"});
    }
    t.print();

    // Shape checks: efficiency degrades S -> M -> L (communication),
    // and on OPT-6.7B Hydra beats every ASIC.
    TextTable k("\nKey shapes (paper Section V-C)");
    k.header({"Check", "value", "expectation"});
    k.addRow({"Hydra-S <= Hydra-M <= Hydra-L (ResNet-18)",
              fmtF(vals[0][0], 2) + " / " + fmtF(vals[1][0], 2) + " / " +
                  fmtF(vals[2][0], 2),
              "monotonic"});
    double sharp_opt = asicEdapTable()[3].opt;
    k.addRow({"Hydra-L vs SHARP on OPT-6.7B",
              fmtX(sharp_opt / vals[2][3]),
              "paper: 12.2x better"});
    double cl_opt = asicEdapTable()[0].opt;
    k.addRow({"Hydra-L vs CraterLake on OPT-6.7B",
              fmtX(cl_opt / vals[2][3]), "paper: 19.4x better"});
    k.print();
    return 0;
}
