/**
 * @file
 * Reproduces the paper's Section II motivation datapoint: ResNet-20 on
 * CIFAR-10, "the most advanced practical accelerators, Poseidon and
 * FAB, achieve a performance of nearly 3 seconds" -- and shows what
 * scale-out buys even for this tailored small model.
 */

#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock(
        "Section II motivation: ResNet-20 / CIFAR-10 (seconds)");

    WorkloadModel wl = makeResNet20Cifar();
    TextTable t;
    t.header({"Machine", "time (s)", "comm%", "note"});
    for (auto spec : {poseidonSpec(), fabSSpec(), hydraSSpec(),
                      hydraMSpec(), hydraLSpec()}) {
        InferenceRunner runner(spec);
        InferenceResult res = runner.run(wl);
        const char* note = "";
        if (spec.name == "Poseidon")
            note = "paper: ~3 s";
        else if (spec.name == "FAB-S")
            note = "paper: ~3 s (relative FAB model is Table-II tuned)";
        t.addRow({spec.name, fmtF(res.seconds(), 2),
                  fmtPct(res.commFraction(), 1), note});
    }
    t.print();

    std::printf("\nEven the tailored small model leaves parallelism on\n"
                "the table: kernel-group parallelism is only 12-24, so\n"
                "Hydra-M helps but Hydra-L saturates (the paper's case\n"
                "for scale-out is the *large*-model trend).\n");
    return 0;
}
