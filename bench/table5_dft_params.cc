/**
 * @file
 * Reproduces paper Table V: optimal (Radix, bs) choices of the
 * bootstrapping DFT under the Eq. 1 performance model, per slot count
 * and per prototype (multiplication-depth budget of 3 levels).
 */

#include "bench_util.hh"
#include "model/dft_model.hh"

using namespace hydra;
using namespace hydra::bench;

namespace {

std::string
planCell(const DftPlan& plan, bool radix)
{
    std::string out = "(";
    for (size_t i = 0; i < plan.levels.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(radix ? plan.levels[i].radix
                                    : plan.levels[i].bs);
    }
    return out + ")";
}

} // namespace

int
main()
{
    printHeaderBlock(
        "Table V: optimal Radix and bs per prototype (depth = 3)");

    struct Proto
    {
        const char* name;
        size_t cards;
    };
    const Proto protos[] = {{"Hydra-S", 1}, {"Hydra-M", 8},
                            {"Hydra-L", 64}};

    PrototypeSpec spec = hydraSSpec();
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    SwitchedNetwork net(NetParams{}, hydraL());
    DftOpTimes times = DftOpTimes::fromCostModel(cost, net, 18);

    TextTable t;
    t.header({"logSlots", "S Radix", "S bs", "M Radix", "M bs",
              "L Radix", "L bs"});
    for (size_t log_slots = 12; log_slots <= 15; ++log_slots) {
        std::vector<std::string> row = {std::to_string(log_slots)};
        for (const auto& p : protos) {
            DftPlan plan = optimizeDftPlan(3, log_slots, p.cards, times);
            row.push_back(planCell(plan, true));
            row.push_back(planCell(plan, false));
        }
        t.addRow(row);
    }
    t.print();

    std::printf("\nPaper reference (Table V):\n"
                "  12: S (16,16,16)/(4,4,4)  M (16,16,16)/(1,2,2)  "
                "L (8,4,128)/(1,1,2)\n"
                "  15: S (32,32,32)/(4,8,8)  M (32,16,64)/(2,2,4)  "
                "L (8,32,128)/(1,1,2)\n"
                "Shape: bs shrinks as cards grow; Hydra-L prefers\n"
                "asymmetric radices with one large level.\n");

    // Also show the modelled DFT time per prototype at logSlots = 15.
    TextTable d("\nModelled single-DFT time (logSlots = 15)");
    d.header({"Prototype", "plan", "time (ms)"});
    for (const auto& p : protos) {
        DftPlan plan = optimizeDftPlan(3, 15, p.cards, times);
        d.addRow({p.name, plan.describe(),
                  fmtF(dftTime(plan, p.cards, times) * 1e3, 2)});
    }
    d.print();
    return 0;
}
