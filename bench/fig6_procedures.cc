/**
 * @file
 * Reproduces paper Fig. 6: per-procedure speedup of Hydra-S/M/L on the
 * four benchmarks, normalized to Hydra-S.
 */

#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock(
        "Fig. 6: key-procedure speedup, normalized to Hydra-S");

    std::vector<PrototypeSpec> specs;
    specs.push_back(hydraSSpec());
    specs.push_back(hydraMSpec());
    specs.push_back(hydraLSpec());

    const ProcKind cnn_procs[] = {ProcKind::ConvBN, ProcKind::NonLinear,
                                  ProcKind::Pooling, ProcKind::FC,
                                  ProcKind::Bootstrap};
    const ProcKind llm_procs[] = {ProcKind::PCMM, ProcKind::CCMM,
                                  ProcKind::NonLinear, ProcKind::Norm,
                                  ProcKind::Bootstrap};

    for (const auto& wl : allBenchmarks()) {
        bool is_cnn = wl.stepCount(ProcKind::ConvBN) > 0;
        std::vector<InferenceResult> results;
        for (const auto& spec : specs) {
            InferenceRunner runner(spec);
            results.push_back(runner.run(wl));
        }

        TextTable t("\n" + wl.name + " (speedup vs Hydra-S)");
        t.header({"Procedure", "Hydra-S", "Hydra-M", "Hydra-L"});
        auto procs = is_cnn ? std::vector<ProcKind>(std::begin(cnn_procs),
                                                    std::end(cnn_procs))
                            : std::vector<ProcKind>(std::begin(llm_procs),
                                                    std::end(llm_procs));
        for (ProcKind k : procs) {
            Tick base = results[0].procTime(k);
            if (base == 0)
                continue;
            auto speedup = [&](size_t i) {
                Tick t_i = results[i].procTime(k);
                return t_i ? static_cast<double>(base) /
                                 static_cast<double>(t_i)
                           : 0.0;
            };
            t.addRow({procName(k), fmtX(1.0), fmtX(speedup(1)),
                      fmtX(speedup(2))});
        }
        Tick base = results[0].total.makespan;
        t.addRow({"Total", fmtX(1.0),
                  fmtX(static_cast<double>(base) /
                       results[1].total.makespan),
                  fmtX(static_cast<double>(base) /
                       results[2].total.makespan)});
        t.print();
    }

    std::printf("\nPaper shapes: ConvBN/FC exceed 50x on Hydra-L; ReLU,\n"
                "Pooling and Boot scale modestly (limited parallelism);\n"
                "attention/FFN procedures keep scaling on OPT-6.7B.\n");
    return 0;
}
