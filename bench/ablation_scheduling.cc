/**
 * @file
 * Scheduling ablations:
 *   A. chunk granularity of the Fig. 2 compute/broadcast overlap
 *   B. fused queues (Section IV-D preloading) vs per-step barriers
 *   C. Eq. 1-optimized DFT plans vs naive fixed plans (Table V value)
 */

#include "bench_util.hh"
#include "model/dft_model.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock("Scheduling ablations");

    // --- A. chunk granularity ----------------------------------------
    {
        TextTable t("\nA. chunks per card (ResNet-18, Hydra-M): finer "
                    "chunks hide transfers");
        t.header({"chunks/card", "time (s)", "comm overhead"});
        for (size_t chunks : {1, 2, 4, 8, 16}) {
            PrototypeSpec spec = hydraMSpec();
            spec.mapping.maxChunksPerCard = chunks;
            InferenceRunner runner(spec);
            InferenceResult res = runner.run(makeResNet18());
            t.addRow({std::to_string(chunks), fmtF(res.seconds(), 3),
                      fmtPct(res.commFraction(), 2)});
        }
        t.print();
    }

    // --- B. fused preloading vs per-step barriers ----------------------
    {
        TextTable t("\nB. per-step barriers vs fused task queues "
                    "(Section IV-D)");
        t.header({"workload", "machine", "stepwise (s)", "fused (s)",
                  "gain"});
        for (const auto& wl : {makeResNet18(), makeBertBase()}) {
            for (auto spec : {hydraMSpec(), hydraLSpec()}) {
                InferenceRunner runner(spec);
                double stepwise = runner.run(wl).seconds();
                double fused = ticksToSeconds(
                    runner.runFused(wl).makespan);
                t.addRow({wl.name, spec.name, fmtF(stepwise, 2),
                          fmtF(fused, 2), fmtX(stepwise / fused, 2)});
            }
        }
        t.print();
    }

    // --- C. DFT plan quality -------------------------------------------
    {
        TextTable t("\nC. Eq. 1-optimal vs naive DFT plans "
                    "(logSlots 15, limbs 18)");
        t.header({"cards", "optimal plan", "opt (ms)", "naive (ms)",
                  "gain"});
        OpCostModel cost(FpgaParams{}, size_t{1} << 16, 4);
        for (size_t cards : {1, 8, 64}) {
            ClusterConfig cfg{cards <= 8 ? 1 : cards / 8,
                              cards <= 8 ? cards : 8};
            SwitchedNetwork net(NetParams{}, cfg);
            DftOpTimes times = DftOpTimes::fromCostModel(cost, net, 18);
            DftPlan opt = optimizeDftPlan(3, 15, cards, times);
            DftPlan naive;
            naive.levels = {{32, 32}, {32, 32}, {32, 32}}; // bs = gs
            double t_opt = dftTime(opt, cards, times) * 1e3;
            double t_naive = dftTime(naive, cards, times) * 1e3;
            t.addRow({std::to_string(cards), opt.describe(),
                      fmtF(t_opt, 2), fmtF(t_naive, 2),
                      fmtX(t_naive / t_opt, 2)});
        }
        t.print();
    }

    // --- D. radix vs multiplication depth ------------------------------
    {
        TextTable t("\nD. DFT level count: larger radices consume less "
                    "depth but cost more time (Section III-B trade-off)");
        t.header({"levels (depth)", "plan (8 cards)", "time (ms)"});
        OpCostModel cost(FpgaParams{}, size_t{1} << 16, 4);
        SwitchedNetwork net(NetParams{}, hydraM());
        DftOpTimes times = DftOpTimes::fromCostModel(cost, net, 18);
        for (size_t levels : {2, 3, 4, 5}) {
            DftPlan plan = optimizeDftPlan(levels, 15, 8, times);
            t.addRow({std::to_string(levels), plan.describe(),
                      fmtF(dftTime(plan, 8, times) * 1e3, 2)});
        }
        t.print();
        std::printf("\nReading: two levels (radices up to 256) save one\n"
                    "modulus-chain level for the rest of the pipeline,\n"
                    "at a higher DFT cost -- Table V fixes depth = 3.\n");
    }
    return 0;
}
