/**
 * @file
 * Reproduces paper Table II: full-system execution time (seconds) of
 * the four DL benchmarks on the ASIC references (published numbers),
 * the FPGA baselines (simulated from their published parameters), and
 * the three Hydra prototypes (simulated).
 */

#include "bench_util.hh"

using namespace hydra;
using namespace hydra::bench;

int
main()
{
    printHeaderBlock("Table II: full-system performance (seconds)");

    TextTable t;
    t.header({"Machine", "ResNet-18", "ResNet-50", "BERT-base",
              "OPT-6.7B", "source"});

    for (const auto& row : asicPerformanceTable()) {
        t.addRow({row.name, fmtF(row.resnet18, 2), fmtF(row.resnet50, 2),
                  fmtF(row.bert, 2), fmtF(row.opt, 2), "published"});
    }
    t.addSeparator();

    std::vector<PrototypeSpec> specs;
    specs.push_back(fabSSpec());
    specs.push_back(poseidonSpec());
    specs.push_back(fabMSpec());
    specs.push_back(hydraSSpec());
    specs.push_back(hydraMSpec());
    specs.push_back(hydraLSpec());

    std::vector<std::vector<double>> measured;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (i == 3)
            t.addSeparator();
        auto secs = runAllBenchmarks(specs[i]);
        measured.push_back(secs);
        t.addRow({specs[i].name, fmtF(secs[0], 2), fmtF(secs[1], 2),
                  fmtF(secs[2], 2), fmtF(secs[3], 2), "simulated"});
    }
    t.print();

    // Shape checks mirrored from the paper's highlights.
    const auto& hydra_s = measured[3];
    const auto& hydra_m = measured[4];
    const auto& hydra_l = measured[5];
    const auto& fab_s = measured[0];
    const auto& fab_m = measured[2];
    const auto& poseidon = measured[1];

    TextTable k("\nKey ratios (paper: Section V-B)");
    k.header({"Metric", "ResNet-18", "ResNet-50", "BERT-base",
              "OPT-6.7B", "paper range"});
    auto ratioRow = [&](const char* name, const std::vector<double>& num,
                        const std::vector<double>& den,
                        const char* expect) {
        k.addRow({name, fmtX(num[0] / den[0]), fmtX(num[1] / den[1]),
                  fmtX(num[2] / den[2]), fmtX(num[3] / den[3]), expect});
    };
    ratioRow("FAB-S / Hydra-S", fab_s, hydra_s, "2.8-3.1x");
    ratioRow("Poseidon / Hydra-S", poseidon, hydra_s, "~1.3x");
    ratioRow("FAB-M / Hydra-M", fab_m, hydra_m, "2.8-3.3x");
    ratioRow("Hydra-S / Hydra-M", hydra_s, hydra_m, "6.3-7.5x");
    ratioRow("Hydra-S / Hydra-L", hydra_s, hydra_l, "27.7-55.9x");
    k.print();

    return 0;
}
